package server

import (
	"context"
	"encoding/json"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fmt"
	"math/rand"

	"mra"
)

// testAccountRows generates deterministic banking rows (the workload package
// cannot be imported here — it depends on this package's client).
func testAccountRows(n int) [][]any {
	rng := rand.New(rand.NewSource(7))
	rows := make([][]any, n)
	for i := range rows {
		rows[i] = []any{int64(i), fmt.Sprintf("owner%04d", i), float64(rng.Intn(100000)) / 100}
	}
	return rows
}

// startTestServer serves a seeded banking database on an ephemeral loopback
// port and returns the server plus its address.
func startTestServer(t *testing.T, accounts int, cfg Config) (*Server, string) {
	t.Helper()
	db := mra.Open()
	db.MustCreateRelation("account",
		mra.Col("id", mra.Int), mra.Col("owner", mra.String), mra.Col("balance", mra.Float))
	if err := db.InsertValues("account", testAccountRows(accounts)...); err != nil {
		t.Fatal(err)
	}
	srv := New(db, cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, l.Addr().String()
}

// mustDo sends a line and fails the test on a transport error.
func mustDo(t *testing.T, cl *Client, line string) Response {
	t.Helper()
	resp, err := cl.Do(line)
	if err != nil {
		t.Fatalf("Do(%q): %v", line, err)
	}
	return resp
}

func TestProtocolBasics(t *testing.T) {
	_, addr := startTestServer(t, 16, Config{})
	cl, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	resp := mustDo(t, cl, "select count(*) from account;")
	if !resp.OK || len(resp.Results) != 1 || resp.Results[0].RowCount != 1 {
		t.Fatalf("autocommit select failed: %+v", resp)
	}
	if got := resp.Results[0].Rows[0][0]; got != float64(16) && got != int64(16) {
		t.Fatalf("count = %v, want 16", got)
	}

	// Explicit transaction: update inside, visible after commit.
	if resp := mustDo(t, cl, "begin"); !resp.OK || resp.State != StateTxn {
		t.Fatalf("begin: %+v", resp)
	}
	if resp := mustDo(t, cl, "update account set balance = 0 where id = 3;"); !resp.OK {
		t.Fatalf("update in txn: %+v", resp)
	}
	if resp := mustDo(t, cl, "commit"); !resp.OK || resp.State != StateIdle {
		t.Fatalf("commit: %+v", resp)
	}
	resp = mustDo(t, cl, "select balance from account where id = 3;")
	if !resp.OK || resp.Results[0].Rows[0][0] != float64(0) {
		t.Fatalf("committed update not visible: %+v", resp)
	}

	// A statement error inside a transaction forces the aborted state until
	// rollback; commit in that state rolls back with ok=false.
	mustDo(t, cl, "begin")
	if resp := mustDo(t, cl, "select nope from nothing;"); resp.OK || resp.State != StateAborted {
		t.Fatalf("bad statement should abort the transaction: %+v", resp)
	}
	if resp := mustDo(t, cl, "select count(*) from account;"); resp.OK {
		t.Fatalf("aborted session must reject statements: %+v", resp)
	}
	if resp := mustDo(t, cl, "rollback"); !resp.OK || resp.State != StateIdle {
		t.Fatalf("rollback should clear the aborted state: %+v", resp)
	}

	// Session knobs.
	if resp := mustDo(t, cl, `\set workers 2`); !resp.OK {
		t.Fatalf("\\set workers: %+v", resp)
	}
	if resp := mustDo(t, cl, `\set serializable on`); !resp.OK {
		t.Fatalf("\\set serializable: %+v", resp)
	}
	if resp := mustDo(t, cl, `\set bogus 1`); resp.OK {
		t.Fatalf("unknown setting must fail: %+v", resp)
	}
	if resp := mustDo(t, cl, `\set timeout 50ms`); !resp.OK {
		t.Fatalf("\\set timeout: %+v", resp)
	}
}

// TestFirstCommitterWinsOverWire drives the key-granular conflict semantics
// end to end over the wire: two sessions updating disjoint keys of the same
// relation both commit, while two sessions updating the same key produce
// exactly one winner — the loser's commit fails with the conflict flag set.
func TestFirstCommitterWinsOverWire(t *testing.T) {
	_, addr := startTestServer(t, 16, Config{})
	a, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Disjoint keys: both writers of the same relation must commit.
	mustDo(t, a, "begin")
	mustDo(t, b, "begin")
	if resp := mustDo(t, a, "update account set balance = balance + 1 where id = 0;"); !resp.OK {
		t.Fatalf("a's update: %+v", resp)
	}
	if resp := mustDo(t, b, "update account set balance = balance + 2 where id = 1;"); !resp.OK {
		t.Fatalf("b's update: %+v", resp)
	}
	if resp := mustDo(t, a, "commit"); !resp.OK {
		t.Fatalf("disjoint-key writer a must commit: %+v", resp)
	}
	if resp := mustDo(t, b, "commit"); !resp.OK || resp.Conflict {
		t.Fatalf("disjoint-key writer b must commit without conflict: %+v", resp)
	}

	// Overlapping key: the second committer must lose with the conflict flag.
	mustDo(t, a, "begin")
	mustDo(t, b, "begin")
	if resp := mustDo(t, a, "update account set balance = balance + 1 where id = 0;"); !resp.OK {
		t.Fatalf("a's update: %+v", resp)
	}
	if resp := mustDo(t, b, "update account set balance = balance + 2 where id = 0;"); !resp.OK {
		t.Fatalf("b's update: %+v", resp)
	}
	if resp := mustDo(t, a, "commit"); !resp.OK {
		t.Fatalf("first committer must win: %+v", resp)
	}
	resp := mustDo(t, b, "commit")
	if resp.OK || !resp.Conflict {
		t.Fatalf("second committer must lose with the conflict flag: %+v", resp)
	}

	// Both updates landed: id 0 carries a's +1 from the overlap round plus
	// its +1 from the disjoint round.
	mustDo(t, a, "begin")
	check := mustDo(t, a, "select balance from account where id = 0;")
	if !check.OK || len(check.Results) != 1 {
		t.Fatalf("reading id 0 back: %+v", check)
	}
	mustDo(t, a, "commit")
}

func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	srv, addr := startTestServer(t, 2000, Config{})
	cl, err := Dial(addr, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Fire a deliberately expensive statement, then shut down while it runs.
	type result struct {
		resp Response
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := cl.Do("select count(*) from account a, account b where a.balance < b.balance;")
		done <- result{resp, err}
	}()

	// Wait until the statement is actually in flight.
	busy := func() bool {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		for sess := range srv.sessions {
			sess.mu.Lock()
			b := sess.busy
			sess.mu.Unlock()
			if b {
				return true
			}
		}
		return false
	}
	deadline := time.Now().Add(5 * time.Second)
	for !busy() {
		if time.Now().After(deadline) {
			t.Fatal("statement never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown should drain, got %v", err)
	}
	res := <-done
	if res.err != nil {
		t.Fatalf("in-flight statement lost its response: %v", res.err)
	}
	if !res.resp.OK {
		t.Fatalf("drained statement should succeed: %+v", res.resp)
	}
}

func TestShutdownAbortsIdleInTransaction(t *testing.T) {
	srv, addr := startTestServer(t, 8, Config{})
	cl, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	mustDo(t, cl, "begin")
	if resp := mustDo(t, cl, "update account set balance = -1 where id = 0;"); !resp.OK {
		t.Fatalf("update: %+v", resp)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown with only an idle-in-txn session should drain: %v", err)
	}
	// The uncommitted update must be gone.
	res, err := srv.DB().QuerySQL("select balance from account where id = 0")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows()[0][0] == float64(-1) {
		t.Fatal("uncommitted update survived shutdown")
	}
}

func TestSlowClientCannotWedgeServer(t *testing.T) {
	srv, addr := startTestServer(t, 8, Config{IdleTimeout: 50 * time.Millisecond})

	// A client that connects and never sends anything must be cut by the idle
	// deadline rather than holding its session slot forever.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected the server to close the silent connection")
	}

	// The listener must still serve new clients.
	cl, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if resp := mustDo(t, cl, "select count(*) from account;"); !resp.OK {
		t.Fatalf("server wedged after slow client: %+v", resp)
	}

	deadline := time.Now().Add(5 * time.Second)
	for srv.ActiveSessions() > 1 {
		if time.Now().After(deadline) {
			t.Fatalf("idle session never reaped: %d active", srv.ActiveSessions())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestMaxSessionsRefusal(t *testing.T) {
	srv, addr := startTestServer(t, 8, Config{MaxSessions: 1})
	first, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	mustDo(t, first, "select count(*) from account;")

	second, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	resp, err := second.Do("select count(*) from account;")
	if err != nil {
		// The refusal response is written before our command line is read, so
		// reading it directly is also acceptable.
		t.Fatalf("expected a refusal response, got transport error %v", err)
	}
	if resp.OK || !strings.Contains(resp.Error, "session limit") {
		t.Fatalf("expected a session-limit refusal, got %+v", resp)
	}
	if srv.Refused() == 0 {
		t.Fatal("refusal counter did not advance")
	}
}

func TestHTTPFrontEnd(t *testing.T) {
	srv, _ := startTestServer(t, 16, Config{})
	hs := httptest.NewServer(srv.HTTPHandler())
	defer hs.Close()

	resp, err := hs.Client().Post(hs.URL+"/query", "text/plain",
		strings.NewReader("select count(*) from account"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("POST /query status %d", resp.StatusCode)
	}
	var r Response
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	if !r.OK || len(r.Results) != 1 {
		t.Fatalf("http query: %+v", r)
	}

	health, err := hs.Client().Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health.Body.Close()
	if health.StatusCode != 200 {
		t.Fatalf("GET /healthz status %d", health.StatusCode)
	}

	bad, err := hs.Client().Post(hs.URL+"/query", "application/json",
		strings.NewReader(`{"query": "select nope from nothing"}`))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode == 200 {
		t.Fatal("bad query should not return 200")
	}
}

func TestStatementTimeout(t *testing.T) {
	_, addr := startTestServer(t, 3000, Config{})
	cl, err := Dial(addr, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if resp := mustDo(t, cl, `\set timeout 1ms`); !resp.OK {
		t.Fatalf("\\set timeout: %+v", resp)
	}
	resp := mustDo(t, cl, "select count(*) from account a, account b where a.balance < b.balance;")
	if resp.OK {
		t.Fatalf("statement should exceed its 1ms deadline: %+v", resp)
	}
	if !strings.Contains(resp.Error, "deadline") && !strings.Contains(resp.Error, "cancel") {
		t.Fatalf("expected a deadline error, got %q", resp.Error)
	}
}
