package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"time"
)

// httpQuery is the JSON body accepted by POST /query.
type httpQuery struct {
	// Query holds one or more ';'-separated statements.
	Query string `json:"query"`
	// Lang overrides the server's default statement language ("sql" or
	// "xra"); empty inherits.
	Lang string `json:"lang,omitempty"`
	// TimeoutMS overrides the server's statement timeout for this query;
	// zero inherits.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Serializable upgrades the query's transaction to validate its read
	// set at commit, not just its write set.
	Serializable bool `json:"serializable,omitempty"`
}

// HTTPHandler returns the curl-able HTTP front-end: POST /query runs a
// statement line as one auto-committed transaction and answers with the same
// Response JSON the TCP protocol uses; GET /healthz reports liveness.  The
// request body may be the JSON form {"query": "...", "lang": "sql"} or raw
// statement text.
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// handleQuery serves POST /query.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed,
			Response{OK: false, State: StateIdle, Error: "use POST with a query body"})
		return
	}
	if s.isDraining() {
		writeJSON(w, http.StatusServiceUnavailable,
			Response{OK: false, State: StateIdle, Error: "server is shutting down"})
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest,
			Response{OK: false, State: StateIdle, Error: "reading request body: " + err.Error()})
		return
	}
	q := httpQuery{Query: string(body)}
	if strings.HasPrefix(strings.TrimSpace(r.Header.Get("Content-Type")), "application/json") {
		q = httpQuery{}
		if err := json.Unmarshal(body, &q); err != nil {
			writeJSON(w, http.StatusBadRequest,
				Response{OK: false, State: StateIdle, Error: "decoding JSON body: " + err.Error()})
			return
		}
	}
	if strings.TrimSpace(q.Query) == "" {
		writeJSON(w, http.StatusBadRequest,
			Response{OK: false, State: StateIdle, Error: "empty query"})
		return
	}
	sql := !s.cfg.XRA
	switch strings.ToLower(q.Lang) {
	case "":
	case "sql":
		sql = true
	case "xra":
		sql = false
	default:
		writeJSON(w, http.StatusBadRequest,
			Response{OK: false, State: StateIdle, Error: `lang must be "sql" or "xra"`})
		return
	}

	ctx := r.Context()
	timeout := s.cfg.StatementTimeout
	if q.TimeoutMS > 0 {
		timeout = time.Duration(q.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	s.statements.Add(1)
	start := time.Now()
	opts := mraTxOptions(s.cfg)
	opts.Serializable = q.Serializable
	resp := s.autocommit(ctx, q.Query, sql, opts)
	resp.State = StateIdle
	resp.ElapsedUS = time.Since(start).Microseconds()

	status := http.StatusOK
	switch {
	case resp.Conflict:
		status = http.StatusConflict
	case !resp.OK:
		status = http.StatusUnprocessableEntity
	}
	writeJSON(w, status, resp)
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeJSON(w, http.StatusServiceUnavailable,
			Response{OK: false, State: StateIdle, Error: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, Response{OK: true, State: StateIdle})
}

// writeJSON writes one JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, resp Response) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(resp)
}
