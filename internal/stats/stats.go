// Package stats implements the optimizer's statistics subsystem: per-column
// HyperLogLog distinct-count sketches, equi-depth histograms, and
// null/min/max summaries over multi-set relations.
//
// Statistics are built in full by Analyze (the ANALYZE statement) and
// maintained incrementally from the multiset Add/Remove deltas that
// key-granular commits already produce (storage.ApplyDeltas): additions
// update every summary exactly, while removals decrement row and bucket
// counts but cannot shrink a sketch or a min/max bound — those only tighten
// again on the next ANALYZE.  Tables are immutable after construction;
// ApplyDelta returns a fresh copy, so MVCC snapshots can hold a *Table
// pointer without locks and always plan against the statistics of their own
// version.
package stats

import (
	"mra/internal/multiset"
	"mra/internal/tuple"
	"mra/internal/value"
)

// Column summarises one attribute: a distinct-value sketch, the null count,
// the observed min/max, and an equi-depth histogram over non-null values.
type Column struct {
	sketch   *Sketch
	nulls    float64
	hasRange bool
	min, max value.Value
	hist     *Histogram
}

// clone returns an independent copy of the column summary.
func (c *Column) clone() Column {
	return Column{
		sketch:   c.sketch.Clone(),
		nulls:    c.nulls,
		hasRange: c.hasRange,
		min:      c.min,
		max:      c.max,
		hist:     c.hist.clone(),
	}
}

// observe records n occurrences of v in the column summary.
func (c *Column) observe(v value.Value, n float64) {
	if v.IsNull() {
		c.nulls += n
		return
	}
	c.sketch.Add(v.Hash())
	if !c.hasRange {
		c.hasRange = true
		c.min, c.max = v, v
	} else {
		if v.Less(c.min) {
			c.min = v
		}
		if c.max.Less(v) {
			c.max = v
		}
	}
	if c.hist != nil {
		c.hist.add(v, n)
	}
}

// forget removes n occurrences of v from the decrementable summaries.  The
// sketch and min/max cannot shrink; they stay valid upper bounds until the
// next ANALYZE (Table.ApplyDelta documents the contract).
func (c *Column) forget(v value.Value, n float64) {
	if v.IsNull() {
		if c.nulls < n {
			n = c.nulls
		}
		c.nulls -= n
		return
	}
	if c.hist != nil {
		c.hist.remove(v, n)
	}
}

// Table is an immutable statistics summary of one relation instance: total
// row count, a distinct-tuple sketch, one Column per attribute, and the
// database version the summary describes.  All methods are safe for
// concurrent use; mutation goes through ApplyDelta, which returns a new
// Table.
type Table struct {
	rows    float64
	tuples  *Sketch
	cols    []Column
	version uint64
}

// Analyze builds complete statistics for a relation instance, stamped with
// the given database version.  Histograms use DefaultBuckets buckets.
func Analyze(r *multiset.Relation, version uint64) *Table {
	arity := r.Schema().Arity()
	t := &Table{tuples: NewSketch(), cols: make([]Column, arity), version: version}
	// First pass: gather per-column non-null values with multiplicities so
	// the equi-depth histograms can be built from sorted runs.
	vals := make([][]value.Value, arity)
	counts := make([][]uint64, arity)
	r.EachHash(func(tp tuple.Tuple, hash uint64, count uint64) bool {
		t.rows += float64(count)
		t.tuples.Add(hash)
		for i := 0; i < arity; i++ {
			v := tp.At(i)
			if v.IsNull() {
				t.cols[i].nulls += float64(count)
				continue
			}
			vals[i] = append(vals[i], v)
			counts[i] = append(counts[i], count)
		}
		return true
	})
	for i := range t.cols {
		c := &t.cols[i]
		c.sketch = NewSketch()
		for _, v := range vals[i] {
			c.sketch.Add(v.Hash())
		}
		for _, v := range vals[i] {
			if !c.hasRange {
				c.hasRange = true
				c.min, c.max = v, v
				continue
			}
			if v.Less(c.min) {
				c.min = v
			}
			if c.max.Less(v) {
				c.max = v
			}
		}
		c.hist = buildHistogram(vals[i], counts[i], DefaultBuckets)
	}
	return t
}

// ApplyDelta returns a new Table reflecting the given multiset delta
// (occurrences added and removed).  Additions update every summary; removals
// decrement row, null, and histogram-bucket counts but leave sketches and
// min/max untouched, so between ANALYZE runs distinct counts and ranges are
// upper bounds whose error the stats property suite bounds.  Either relation
// may be nil.
func (t *Table) ApplyDelta(add, remove *multiset.Relation) *Table {
	nt := &Table{
		rows:    t.rows,
		tuples:  t.tuples.Clone(),
		cols:    make([]Column, len(t.cols)),
		version: t.version,
	}
	for i := range t.cols {
		nt.cols[i] = t.cols[i].clone()
	}
	if add != nil {
		add.EachHash(func(tp tuple.Tuple, hash uint64, count uint64) bool {
			nt.rows += float64(count)
			nt.tuples.Add(hash)
			for i := range nt.cols {
				if i < tp.Arity() {
					nt.cols[i].observe(tp.At(i), float64(count))
				}
			}
			return true
		})
	}
	if remove != nil {
		remove.EachHash(func(tp tuple.Tuple, hash uint64, count uint64) bool {
			n := float64(count)
			if nt.rows < n {
				n = nt.rows
			}
			nt.rows -= n
			for i := range nt.cols {
				if i < tp.Arity() {
					nt.cols[i].forget(tp.At(i), float64(count))
				}
			}
			return true
		})
	}
	return nt
}

// WithVersion returns a copy of the table stamped with a new version.  The
// summaries are shared (the table is immutable), so this is O(1).
func (t *Table) WithVersion(version uint64) *Table {
	nt := *t
	nt.version = version
	return &nt
}

// Rows returns the estimated total occurrence count.
func (t *Table) Rows() float64 { return t.rows }

// DistinctTuples estimates the number of distinct tuples, clamped by Rows.
func (t *Table) DistinctTuples() float64 {
	e := t.tuples.Estimate()
	if e > t.rows {
		e = t.rows
	}
	return e
}

// Cols returns the number of columns summarised.
func (t *Table) Cols() int { return len(t.cols) }

// Version returns the database version the statistics were last rebuilt or
// incrementally updated at.
func (t *Table) Version() uint64 { return t.version }

// NDV estimates the number of distinct non-null values in a column, clamped
// by the row count.  The second result is false when the column index is out
// of range.
func (t *Table) NDV(col int) (float64, bool) {
	if col < 0 || col >= len(t.cols) {
		return 0, false
	}
	e := t.cols[col].sketch.Estimate()
	nonNull := t.rows - t.cols[col].nulls
	if nonNull < 0 {
		nonNull = 0
	}
	if e > nonNull {
		e = nonNull
	}
	return e, true
}

// NullFraction returns the fraction of rows whose column value is null.
func (t *Table) NullFraction(col int) float64 {
	if col < 0 || col >= len(t.cols) || t.rows <= 0 {
		return 0
	}
	f := t.cols[col].nulls / t.rows
	if f > 1 {
		f = 1
	}
	return f
}

// Range returns the observed min and max of a column's non-null values.
func (t *Table) Range(col int) (min, max value.Value, ok bool) {
	if col < 0 || col >= len(t.cols) || !t.cols[col].hasRange {
		return value.Value{}, value.Value{}, false
	}
	return t.cols[col].min, t.cols[col].max, true
}

// FracLE estimates the fraction of all rows whose column value is <= v
// (inclusive) or < v (exclusive).  Null rows never match.  The second result
// is false when no histogram is available for the column.
func (t *Table) FracLE(col int, v value.Value, inclusive bool) (float64, bool) {
	if col < 0 || col >= len(t.cols) || t.cols[col].hist == nil || t.rows <= 0 {
		return 0, false
	}
	c := &t.cols[col]
	nonNull := 1 - t.NullFraction(col)
	return c.hist.FracLE(v, inclusive) * nonNull, true
}

// EqFraction estimates the fraction of all rows whose column value equals v:
// zero outside the observed range, otherwise the uniform 1/NDV share of the
// non-null rows.
func (t *Table) EqFraction(col int, v value.Value) (float64, bool) {
	if col < 0 || col >= len(t.cols) || t.rows <= 0 {
		return 0, false
	}
	c := &t.cols[col]
	if v.IsNull() {
		return t.NullFraction(col), true
	}
	if c.hasRange && (v.Less(c.min) || c.max.Less(v)) {
		return 0, true
	}
	ndv, _ := t.NDV(col)
	if ndv < 1 {
		return 0, true
	}
	return (1 - t.NullFraction(col)) / ndv, true
}

// Histogram returns the column's equi-depth histogram (nil when the column
// holds no non-null values or statistics were never built for it).
func (t *Table) Histogram(col int) *Histogram {
	if col < 0 || col >= len(t.cols) {
		return nil
	}
	return t.cols[col].hist
}
