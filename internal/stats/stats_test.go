package stats

import (
	"math"
	"math/rand"
	"testing"

	"mra/internal/multiset"
	"mra/internal/schema"
	"mra/internal/tuple"
	"mra/internal/value"
)

func testSchema() schema.Relation {
	return schema.NewRelation("t",
		schema.Attribute{Name: "a", Type: value.KindInt},
		schema.Attribute{Name: "b", Type: value.KindInt},
	)
}

func TestSketchEstimateAccuracy(t *testing.T) {
	for _, n := range []int{0, 1, 10, 100, 1000, 50000} {
		s := NewSketch()
		for i := 0; i < n; i++ {
			s.Add(tuple.Ints(int64(i)).Hash())
		}
		got := s.Estimate()
		tol := 0.05 * float64(n)
		if tol < 2 {
			tol = 2
		}
		if math.Abs(got-float64(n)) > tol {
			t.Fatalf("n=%d: estimate %.1f outside ±%.1f", n, got, tol)
		}
	}
}

func TestAnalyzeSummaries(t *testing.T) {
	r := multiset.New(testSchema())
	for i := 0; i < 1000; i++ {
		r.Add(tuple.Ints(int64(i%10), int64(i)), 2)
	}
	st := Analyze(r, 7)
	if st.Version() != 7 {
		t.Fatalf("version = %d", st.Version())
	}
	if st.Rows() != 2000 {
		t.Fatalf("rows = %.0f", st.Rows())
	}
	if ndv, ok := st.NDV(0); !ok || math.Abs(ndv-10) > 1 {
		t.Fatalf("NDV(a) = %.1f, %v", ndv, ok)
	}
	if ndv, ok := st.NDV(1); !ok || math.Abs(ndv-1000) > 50 {
		t.Fatalf("NDV(b) = %.1f, %v", ndv, ok)
	}
	min, max, ok := st.Range(1)
	if !ok || min.Int() != 0 || max.Int() != 999 {
		t.Fatalf("range(b) = %v..%v, %v", min, max, ok)
	}
	// Median of column b is ~500: FracLE should land near 0.5.
	if f, ok := st.FracLE(1, value.NewInt(500), true); !ok || math.Abs(f-0.5) > 0.1 {
		t.Fatalf("FracLE(b<=500) = %.3f, %v", f, ok)
	}
	if f, ok := st.EqFraction(0, value.NewInt(3)); !ok || math.Abs(f-0.1) > 0.03 {
		t.Fatalf("EqFraction(a=3) = %.3f, %v", f, ok)
	}
	if f, ok := st.EqFraction(0, value.NewInt(99)); !ok || f != 0 {
		t.Fatalf("EqFraction(a=99) = %.3f, %v (want 0: outside range)", f, ok)
	}
}

func TestAnalyzeNullsAndEmpty(t *testing.T) {
	r := multiset.New(testSchema())
	empty := Analyze(r, 1)
	if empty.Rows() != 0 {
		t.Fatalf("empty rows = %.0f", empty.Rows())
	}
	if _, ok := empty.FracLE(0, value.NewInt(1), true); ok {
		t.Fatal("empty relation should have no histogram")
	}
	r.Add(tuple.New(value.Null, value.NewInt(1)), 3)
	r.Add(tuple.Ints(5, 2), 1)
	st := Analyze(r, 2)
	if f := st.NullFraction(0); math.Abs(f-0.75) > 1e-9 {
		t.Fatalf("null fraction = %.3f", f)
	}
	if f, ok := st.EqFraction(0, value.Null); !ok || math.Abs(f-0.75) > 1e-9 {
		t.Fatalf("EqFraction(null) = %.3f, %v", f, ok)
	}
}

// TestApplyDeltaMatchesRebuild drives random add/remove delta streams through
// incremental maintenance and checks the incremental summary against a full
// rebuild of the final relation: row and null counts must agree exactly, and
// the (grow-only) distinct sketch must bound the rebuilt NDV from above
// within HLL error.
func TestApplyDeltaMatchesRebuild(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rel := multiset.New(testSchema())
		for i := 0; i < 500; i++ {
			rel.Add(tuple.Ints(rng.Int63n(50), rng.Int63n(1000)), uint64(1+rng.Intn(3)))
		}
		st := Analyze(rel, 1)
		for step := 0; step < 20; step++ {
			add := multiset.New(testSchema())
			remove := multiset.New(testSchema())
			for i := 0; i < 30; i++ {
				add.Add(tuple.Ints(rng.Int63n(50), rng.Int63n(1000)), uint64(1+rng.Intn(2)))
			}
			// Remove a random sample of existing tuples.
			rel.Each(func(tp tuple.Tuple, count uint64) bool {
				if rng.Intn(20) == 0 {
					n := uint64(rng.Intn(int(count)) + 1)
					remove.Add(tp, n)
				}
				return true
			})
			rel.ApplyDelta(add, remove)
			st = st.ApplyDelta(add, remove)
		}
		rebuilt := Analyze(rel, 1)
		if math.Abs(st.Rows()-rebuilt.Rows()) > 1e-6 {
			t.Fatalf("seed %d: incremental rows %.1f != rebuilt %.1f", seed, st.Rows(), rebuilt.Rows())
		}
		for col := 0; col < 2; col++ {
			inc, _ := st.NDV(col)
			reb, _ := rebuilt.NDV(col)
			// Incremental sketches only grow, so they must dominate the
			// rebuilt estimate up to twice the HLL relative error.
			if inc < reb*(1-2*0.0163) {
				t.Fatalf("seed %d col %d: incremental NDV %.1f below rebuilt %.1f", seed, col, inc, reb)
			}
			// And they may not overshoot what was ever observed (50 / 1000
			// possible values plus sketch error).
			limit := []float64{50, 1000}[col] * 1.1
			if inc > limit {
				t.Fatalf("seed %d col %d: incremental NDV %.1f above limit %.1f", seed, col, inc, limit)
			}
		}
		// Histogram totals track the decremented row counts: overall FracLE
		// at max must stay 1 within clamping error.
		if f, ok := st.FracLE(0, value.NewInt(49), true); ok && f < 0.8 {
			t.Fatalf("seed %d: FracLE at max = %.3f", seed, f)
		}
	}
}

func TestWithVersion(t *testing.T) {
	r := multiset.New(testSchema())
	r.Add(tuple.Ints(1, 2), 1)
	st := Analyze(r, 3)
	st2 := st.WithVersion(9)
	if st.Version() != 3 || st2.Version() != 9 {
		t.Fatalf("versions = %d, %d", st.Version(), st2.Version())
	}
	if st2.Rows() != st.Rows() {
		t.Fatal("WithVersion must share summaries")
	}
}

func TestHistogramBucketsAndMerge(t *testing.T) {
	var vals []value.Value
	var counts []uint64
	for i := 0; i < 256; i++ {
		vals = append(vals, value.NewInt(int64(i)))
		counts = append(counts, 1)
	}
	h := buildHistogram(vals, counts, 8)
	lo, hi, count := h.Buckets()
	if len(hi) != 8 || len(lo) != 8 || len(count) != 8 {
		t.Fatalf("buckets = %d", len(hi))
	}
	sum := 0.0
	for _, c := range count {
		sum += c
	}
	if sum != 256 {
		t.Fatalf("total = %.0f", sum)
	}
	a, b := NewSketch(), NewSketch()
	for i := 0; i < 100; i++ {
		a.Add(tuple.Ints(int64(i)).Hash())
		b.Add(tuple.Ints(int64(i + 50)).Hash())
	}
	a.Merge(b)
	if est := a.Estimate(); math.Abs(est-150) > 10 {
		t.Fatalf("merged estimate = %.1f", est)
	}
}
