package stats

import (
	"math"
	"math/bits"
)

// hllPrecision is the HyperLogLog precision p: sketches use m = 2^p one-byte
// registers.  p = 12 gives 4 KiB per sketch and a relative standard error of
// 1.04/sqrt(m) ~= 1.6%, which is far below the factor-of-two accuracy the
// cost model needs.
const hllPrecision = 12

// hllRegisters is m = 2^p, the register count of every sketch.
const hllRegisters = 1 << hllPrecision

// Sketch is a HyperLogLog distinct-count sketch over 64-bit hashes.  The zero
// value is not usable; create sketches with NewSketch.  A Sketch is
// insert-only: it can absorb new hashes and merge with other sketches, but it
// cannot forget — deleting a value from the underlying relation leaves the
// estimate unchanged (see Table.ApplyDelta for how the maintenance layer
// bounds the resulting staleness).
type Sketch struct {
	reg []uint8
}

// NewSketch returns an empty sketch (estimate 0).
func NewSketch() *Sketch {
	return &Sketch{reg: make([]uint8, hllRegisters)}
}

// Clone returns an independent copy of the sketch.
func (s *Sketch) Clone() *Sketch {
	cp := make([]uint8, hllRegisters)
	copy(cp, s.reg)
	return &Sketch{reg: cp}
}

// fmix64 is the 64-bit murmur3 finaliser: the value hashes feeding the
// sketch (FNV-1a over few bytes) do not avalanche well enough for the top
// bits to act as uniform register selectors, so every hash is scrambled once
// more on the way in.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Add observes one 64-bit hash.  The top p bits select a register; the rank
// (position of the first 1-bit) of the remaining bits updates it.
func (s *Sketch) Add(h uint64) {
	h = fmix64(h)
	idx := h >> (64 - hllPrecision)
	rank := uint8(bits.LeadingZeros64(h<<hllPrecision|1<<(hllPrecision-1))) + 1
	if rank > s.reg[idx] {
		s.reg[idx] = rank
	}
}

// Merge folds another sketch into s (register-wise max), so the estimate of s
// becomes an estimate of the union of the two observed hash sets.
func (s *Sketch) Merge(o *Sketch) {
	for i, r := range o.reg {
		if r > s.reg[i] {
			s.reg[i] = r
		}
	}
}

// Estimate returns the estimated number of distinct hashes observed, using
// the standard HyperLogLog estimator with the linear-counting correction for
// small cardinalities.
func (s *Sketch) Estimate() float64 {
	const m = float64(hllRegisters)
	alpha := 0.7213 / (1 + 1.079/m)
	sum := 0.0
	zeros := 0
	for _, r := range s.reg {
		sum += 1.0 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	e := alpha * m * m / sum
	if e <= 2.5*m && zeros > 0 {
		// Small-range correction: linear counting on empty registers.
		e = m * math.Log(m/float64(zeros))
	}
	return e
}
