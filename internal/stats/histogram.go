package stats

import (
	"sort"

	"mra/internal/value"
)

// DefaultBuckets is the equi-depth bucket count ANALYZE builds per column.
// 32 buckets resolve range selectivities to ~3% of the row count, matching
// the accuracy of the HyperLogLog sketches alongside them.
const DefaultBuckets = 32

// Histogram is an equi-depth (equal-height) histogram over one column's
// non-null values.  Bucket i covers the half-open value interval
// (upper[i-1], upper[i]] — bucket 0 additionally includes lower — and counts
// row occurrences, not distinct values.  Bounds are frozen at build time;
// incremental maintenance adjusts counts and stretches the outermost bounds,
// so a histogram degrades gracefully between ANALYZE runs instead of
// becoming wrong.
type Histogram struct {
	lower  value.Value
	upper  []value.Value
	counts []float64
	total  float64
}

// buildHistogram constructs an equi-depth histogram from a column's non-null
// (value, multiplicity) pairs.  It returns nil when there are no values.
func buildHistogram(vals []value.Value, counts []uint64, buckets int) *Histogram {
	if len(vals) == 0 {
		return nil
	}
	order := make([]int, len(vals))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return vals[order[a]].Less(vals[order[b]])
	})
	total := 0.0
	for _, c := range counts {
		total += float64(c)
	}
	if buckets < 1 {
		buckets = 1
	}
	depth := total / float64(buckets)
	h := &Histogram{lower: vals[order[0]], total: total}
	acc := 0.0
	for rank, i := range order {
		acc += float64(counts[i])
		last := rank == len(order)-1
		// Close a bucket once it reaches the target depth, keeping all
		// occurrences of equal values in one bucket (the next value is
		// strictly greater by the sort).
		if last || acc >= depth {
			h.upper = append(h.upper, vals[i])
			h.counts = append(h.counts, acc)
			acc = 0
		}
	}
	return h
}

// clone returns an independent copy (bounds shared — they are immutable
// values — counts copied).
func (h *Histogram) clone() *Histogram {
	if h == nil {
		return nil
	}
	cp := &Histogram{lower: h.lower, total: h.total}
	cp.upper = append([]value.Value(nil), h.upper...)
	cp.counts = append([]float64(nil), h.counts...)
	return cp
}

// bucketOf returns the index of the bucket whose interval contains v,
// clamping values outside the histogram range to the outermost buckets.
func (h *Histogram) bucketOf(v value.Value) int {
	i := sort.Search(len(h.upper), func(i int) bool {
		return !h.upper[i].Less(v) // upper[i] >= v
	})
	if i >= len(h.upper) {
		i = len(h.upper) - 1
	}
	return i
}

// add records n new occurrences of v, stretching the outermost bounds when v
// falls outside the built range.
func (h *Histogram) add(v value.Value, n float64) {
	if v.Less(h.lower) {
		h.lower = v
	}
	if h.upper[len(h.upper)-1].Less(v) {
		h.upper[len(h.upper)-1] = v
	}
	h.counts[h.bucketOf(v)] += n
	h.total += n
}

// remove forgets n occurrences of v, clamping at empty: a histogram never
// reports negative rows even if the delta stream and the build raced.
func (h *Histogram) remove(v value.Value, n float64) {
	i := h.bucketOf(v)
	if h.counts[i] < n {
		n = h.counts[i]
	}
	h.counts[i] -= n
	if h.total < n {
		h.total = n
	}
	h.total -= n
}

// FracLE estimates the fraction of the histogram's rows with value <= v
// (inclusive) or < v (exclusive), interpolating linearly inside the bucket
// containing v when both bucket bounds and v are numeric; non-numeric values
// use the half-bucket convention.
func (h *Histogram) FracLE(v value.Value, inclusive bool) float64 {
	if h == nil || h.total <= 0 {
		return 0
	}
	if v.Less(h.lower) {
		return 0
	}
	last := h.upper[len(h.upper)-1]
	if last.Less(v) || (inclusive && last.Equal(v)) {
		return 1
	}
	i := h.bucketOf(v)
	below := 0.0
	for b := 0; b < i; b++ {
		below += h.counts[b]
	}
	lo := h.lower
	if i > 0 {
		lo = h.upper[i-1]
	}
	frac := 0.5
	if fv, ok := v.AsFloat(); ok {
		flo, okLo := lo.AsFloat()
		fhi, okHi := h.upper[i].AsFloat()
		if okLo && okHi && fhi > flo {
			frac = (fv - flo) / (fhi - flo)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
		}
	}
	return (below + frac*h.counts[i]) / h.total
}

// Buckets returns the bucket boundaries and row counts for display: bucket i
// covers (lo[i], hi[i]] with count[i] occurrences.
func (h *Histogram) Buckets() (lo, hi []value.Value, count []float64) {
	if h == nil {
		return nil, nil, nil
	}
	lo = make([]value.Value, len(h.upper))
	for i := range h.upper {
		if i == 0 {
			lo[i] = h.lower
		} else {
			lo[i] = h.upper[i-1]
		}
	}
	return lo, append([]value.Value(nil), h.upper...), append([]float64(nil), h.counts...)
}
