// Package setalg implements the classical *set-based* relational algebra as a
// baseline comparator.  It evaluates the same logical expressions as package
// eval, but under set semantics: base relations are deduplicated on access and
// every operator eliminates duplicates from its result, as the set-based
// definitions require.
//
// The baseline exists for two of the paper's motivating claims (Section 1 and
// Example 3.2 of Grefen & de By, ICDE 1994):
//
//  1. Correctness: under set semantics, inserting a projection below an
//     aggregate silently changes the aggregate's value, because the projection
//     removes duplicates that carry information.  Under bag semantics the same
//     rewrite is an equivalence.
//  2. Cost: forcing duplicate elimination after every operator is expensive;
//     the benchmarks quantify the overhead relative to the multi-set engine.
package setalg

import (
	"fmt"

	"mra/internal/algebra"
	"mra/internal/eval"
	"mra/internal/multiset"
	"mra/internal/tuple"
	"mra/internal/value"
)

// Engine evaluates algebra expressions under set semantics.
type Engine struct{}

// Eval evaluates the expression against the source, treating every relation
// and every intermediate result as a set (all multiplicities forced to one).
func (e Engine) Eval(expr algebra.Expr, src eval.Source) (*multiset.Relation, error) {
	r, err := e.eval(expr, src)
	if err != nil {
		return nil, err
	}
	return multiset.Unique(r), nil
}

func (e Engine) eval(expr algebra.Expr, src eval.Source) (*multiset.Relation, error) {
	switch n := expr.(type) {
	case algebra.Rel:
		r, ok := src.Relation(n.Name)
		if !ok {
			return nil, fmt.Errorf("setalg: unknown relation %q", n.Name)
		}
		return multiset.Unique(r), nil

	case algebra.Literal:
		out, err := (eval.Reference{}).Eval(n, src)
		if err != nil {
			return nil, err
		}
		return multiset.Unique(out), nil

	case algebra.Union:
		l, r, err := e.evalPair(n.Left, n.Right, src)
		if err != nil {
			return nil, err
		}
		u, err := multiset.Union(l, r)
		if err != nil {
			return nil, err
		}
		return multiset.Unique(u), nil

	case algebra.Difference:
		l, r, err := e.evalPair(n.Left, n.Right, src)
		if err != nil {
			return nil, err
		}
		d, err := multiset.Difference(l, r)
		if err != nil {
			return nil, err
		}
		return multiset.Unique(d), nil

	case algebra.Intersect:
		l, r, err := e.evalPair(n.Left, n.Right, src)
		if err != nil {
			return nil, err
		}
		i, err := multiset.Intersection(l, r)
		if err != nil {
			return nil, err
		}
		return multiset.Unique(i), nil

	case algebra.Product:
		l, r, err := e.evalPair(n.Left, n.Right, src)
		if err != nil {
			return nil, err
		}
		return multiset.Unique(multiset.Product(l, r)), nil

	case algebra.Select:
		in, err := e.eval(n.Input, src)
		if err != nil {
			return nil, err
		}
		out, err := multiset.Select(in, n.Cond.Holds)
		if err != nil {
			return nil, err
		}
		return out, nil

	case algebra.Project:
		// The set-based projection removes duplicates — the crucial difference
		// from the multi-set projection (see Example 3.2).
		in, err := e.eval(n.Input, src)
		if err != nil {
			return nil, err
		}
		out, err := multiset.Project(in, n.Columns)
		if err != nil {
			return nil, err
		}
		return multiset.Unique(out), nil

	case algebra.Join:
		l, r, err := e.evalPair(n.Left, n.Right, src)
		if err != nil {
			return nil, err
		}
		out, err := multiset.Select(multiset.Product(l, r), n.Cond.Holds)
		if err != nil {
			return nil, err
		}
		return multiset.Unique(out), nil

	case algebra.ExtProject:
		in, err := e.eval(n.Input, src)
		if err != nil {
			return nil, err
		}
		outSchema, err := n.Schema(eval.CatalogOf(src))
		if err != nil {
			return nil, err
		}
		out, err := multiset.Map(in, outSchema, func(t tuple.Tuple) (tuple.Tuple, error) {
			vals := make([]value.Value, len(n.Items))
			for i, item := range n.Items {
				v, err := item.Eval(t)
				if err != nil {
					return tuple.Tuple{}, err
				}
				vals[i] = v
			}
			return tuple.FromSlice(vals), nil
		})
		if err != nil {
			return nil, err
		}
		return multiset.Unique(out), nil

	case algebra.Unique:
		// δ is the identity in the set algebra.
		return e.eval(n.Input, src)

	case algebra.GroupBy:
		// Aggregates are computed over the *deduplicated* input — this is
		// exactly what corrupts Example 3.2 when a projection was pushed in.
		in, err := e.eval(n.Input, src)
		if err != nil {
			return nil, err
		}
		sub := eval.MapSource{"__set_input__": in}
		g := algebra.GroupBy{GroupCols: n.GroupCols, Aggs: n.Aggs,
			Input: algebra.NewRel("__set_input__")}
		out, err := (eval.Reference{}).Eval(g, sub)
		if err != nil {
			return nil, err
		}
		return multiset.Unique(out), nil

	case algebra.TClose:
		in, err := e.eval(n.Input, src)
		if err != nil {
			return nil, err
		}
		sub := eval.MapSource{"__set_input__": in}
		out, err := (eval.Reference{}).Eval(algebra.NewTClose(algebra.NewRel("__set_input__")), sub)
		if err != nil {
			return nil, err
		}
		return out, nil

	default:
		return nil, fmt.Errorf("setalg: unsupported expression %T", expr)
	}
}

func (e Engine) evalPair(a, b algebra.Expr, src eval.Source) (*multiset.Relation, *multiset.Relation, error) {
	l, err := e.eval(a, src)
	if err != nil {
		return nil, nil, err
	}
	r, err := e.eval(b, src)
	if err != nil {
		return nil, nil, err
	}
	return l, r, nil
}
