package setalg

import (
	"testing"

	"mra/internal/algebra"
	"mra/internal/eval"
	"mra/internal/multiset"
	"mra/internal/scalar"
	"mra/internal/schema"
	"mra/internal/tuple"
	"mra/internal/value"
)

// example32Source builds a small beer database where the set-based and bag
// based aggregates demonstrably diverge: two Dutch beers share the same
// alcohol percentage.
func example32Source() eval.MapSource {
	beer := multiset.New(schema.NewRelation("beer",
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "brewery", Type: value.KindString},
		schema.Attribute{Name: "alcperc", Type: value.KindFloat},
	))
	add := func(r *multiset.Relation, vals ...value.Value) { r.Add(tuple.New(vals...), 1) }
	add(beer, value.NewString("pils"), value.NewString("guineken"), value.NewFloat(5.0))
	add(beer, value.NewString("blond"), value.NewString("brolsch"), value.NewFloat(5.0)) // duplicate alcperc
	add(beer, value.NewString("bock"), value.NewString("guineken"), value.NewFloat(6.5))

	brewery := multiset.New(schema.NewRelation("brewery",
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "city", Type: value.KindString},
		schema.Attribute{Name: "country", Type: value.KindString},
	))
	add(brewery, value.NewString("guineken"), value.NewString("amsterdam"), value.NewString("netherlands"))
	add(brewery, value.NewString("brolsch"), value.NewString("enschede"), value.NewString("netherlands"))
	return eval.MapSource{"beer": beer, "brewery": brewery}
}

func joinBeerBrewery() algebra.Expr {
	return algebra.NewJoin(scalar.Eq(1, 3), algebra.NewRel("beer"), algebra.NewRel("brewery"))
}

func TestSetSemanticsDeduplicates(t *testing.T) {
	s := schema.Anonymous(schema.Attribute{Name: "x", Type: value.KindInt})
	r := multiset.FromTuples(s, tuple.Ints(1), tuple.Ints(1), tuple.Ints(2))
	src := eval.MapSource{"r": r}
	out, err := (Engine{}).Eval(algebra.NewRel("r"), src)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cardinality() != 2 || out.Multiplicity(tuple.Ints(1)) != 1 {
		t.Errorf("set semantics must deduplicate base relations: %v", out)
	}
	// Union is a set union.
	u, err := (Engine{}).Eval(algebra.NewUnion(algebra.NewRel("r"), algebra.NewRel("r")), src)
	if err != nil {
		t.Fatal(err)
	}
	if u.Cardinality() != 2 {
		t.Errorf("set union must deduplicate: %v", u)
	}
	// δ is the identity under set semantics.
	d, err := (Engine{}).Eval(algebra.NewUnique(algebra.NewRel("r")), src)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(out) {
		t.Error("unique must be a no-op under set semantics")
	}
}

func TestExample32SetSemanticsCorruptsAggregate(t *testing.T) {
	src := example32Source()
	// Bag semantics: both plans agree (AVG over {5.0, 5.0, 6.5} = 5.5).
	direct := algebra.NewGroupBy([]int{5}, algebra.AggAvg, 2, joinBeerBrewery())
	pushed := algebra.NewGroupBy([]int{1}, algebra.AggAvg, 0,
		algebra.NewProject([]int{2, 5}, joinBeerBrewery()))

	bagEngine := &eval.Engine{}
	bagDirect, err := bagEngine.Eval(direct, src)
	if err != nil {
		t.Fatal(err)
	}
	bagPushed, err := bagEngine.Eval(pushed, src)
	if err != nil {
		t.Fatal(err)
	}
	if !bagDirect.Equal(bagPushed) {
		t.Fatal("bag semantics: projection push-in must preserve the aggregate")
	}
	wantAvg := (5.0 + 5.0 + 6.5) / 3
	assertAvg := func(r *multiset.Relation, want float64, label string) {
		t.Helper()
		found := false
		r.Each(func(tp tuple.Tuple, _ uint64) bool {
			if tp.At(0).Str() == "netherlands" {
				got := tp.At(1).Float()
				if got < want-1e-9 || got > want+1e-9 {
					t.Errorf("%s: AVG = %v, want %v", label, got, want)
				}
				found = true
			}
			return true
		})
		if !found {
			t.Errorf("%s: no netherlands group", label)
		}
	}
	assertAvg(bagDirect, wantAvg, "bag direct")

	// Set semantics: the pushed-in projection collapses the two (5.0,
	// netherlands) tuples into one, so the average shifts to (5.0+6.5)/2.
	setEngine := Engine{}
	setPushed, err := setEngine.Eval(pushed, src)
	if err != nil {
		t.Fatal(err)
	}
	assertAvg(setPushed, (5.0+6.5)/2, "set pushed")
	if bagPushed.Equal(setPushed) {
		t.Error("set semantics with projection push-in must differ from the bag result")
	}
}

func TestSetAndBagAgreeOnDuplicateFreeData(t *testing.T) {
	// When the database happens to be duplicate free and no operator creates
	// duplicates, the two semantics coincide.
	s := schema.NewRelation("r",
		schema.Attribute{Name: "a", Type: value.KindInt},
		schema.Attribute{Name: "b", Type: value.KindInt},
	)
	r := multiset.FromTuples(s, tuple.Ints(1, 10), tuple.Ints(2, 20), tuple.Ints(3, 30))
	src := eval.MapSource{"r": r}
	exprs := []algebra.Expr{
		algebra.NewRel("r"),
		algebra.NewSelect(scalar.NewCompare(value.CmpGt, scalar.NewAttr(1), scalar.NewConst(value.NewInt(15))), algebra.NewRel("r")),
		algebra.NewJoin(scalar.Eq(0, 2), algebra.NewRel("r"), algebra.NewRel("r")),
		algebra.NewProject([]int{0, 1}, algebra.NewRel("r")),
	}
	for _, e := range exprs {
		bag, err := (&eval.Engine{}).Eval(e, src)
		if err != nil {
			t.Fatal(err)
		}
		set, err := (Engine{}).Eval(e, src)
		if err != nil {
			t.Fatal(err)
		}
		if !bag.Equal(set) {
			t.Errorf("duplicate-free data: %s differs\nbag: %s\nset: %s", e, bag, set)
		}
	}
}

func TestSetOperatorsAndErrors(t *testing.T) {
	src := example32Source()
	e := Engine{}
	// Difference and intersection behave as set operators.
	diff, err := e.Eval(algebra.NewDifference(algebra.NewRel("beer"), algebra.NewRel("beer")), src)
	if err != nil || !diff.IsEmpty() {
		t.Errorf("set difference E−E must be empty: %v %v", diff, err)
	}
	inter, err := e.Eval(algebra.NewIntersect(algebra.NewRel("beer"), algebra.NewRel("beer")), src)
	if err != nil || inter.Cardinality() != 3 {
		t.Errorf("set intersection E∩E = E: %v %v", inter, err)
	}
	prod, err := e.Eval(algebra.NewProduct(algebra.NewRel("brewery"), algebra.NewRel("brewery")), src)
	if err != nil || prod.Cardinality() != 4 {
		t.Errorf("set product: %v %v", prod, err)
	}
	// Extended projection dedups its output.
	xp, err := e.Eval(algebra.NewExtProject(
		[]scalar.Expr{scalar.NewConst(value.NewInt(1))}, []string{"one"}, algebra.NewRel("beer")), src)
	if err != nil || xp.Cardinality() != 1 {
		t.Errorf("set extended projection must dedup: %v %v", xp, err)
	}
	// Literal and TClose paths.
	lit := algebra.Literal{Rel: schema.Anonymous(schema.Attribute{Name: "x", Type: value.KindInt}),
		Rows: [][]value.Value{{value.NewInt(1)}, {value.NewInt(1)}}}
	l, err := e.Eval(lit, src)
	if err != nil || l.Cardinality() != 1 {
		t.Errorf("set literal must dedup: %v %v", l, err)
	}
	edges := multiset.FromTuples(schema.NewRelation("edge",
		schema.Attribute{Name: "s", Type: value.KindInt},
		schema.Attribute{Name: "d", Type: value.KindInt}), tuple.Ints(1, 2), tuple.Ints(2, 3))
	tcSrc := eval.MapSource{"edge": edges}
	tc, err := e.Eval(algebra.NewTClose(algebra.NewRel("edge")), tcSrc)
	if err != nil || tc.Cardinality() != 3 {
		t.Errorf("set transitive closure: %v %v", tc, err)
	}
	// Error paths.
	if _, err := e.Eval(algebra.NewRel("missing"), src); err == nil {
		t.Error("unknown relation must fail")
	}
	if _, err := e.Eval(algebra.NewUnion(algebra.NewRel("missing"), algebra.NewRel("beer")), src); err == nil {
		t.Error("operand errors must propagate")
	}
	if _, err := e.Eval(algebra.NewUnion(algebra.NewRel("beer"), algebra.NewRel("missing")), src); err == nil {
		t.Error("right operand errors must propagate")
	}
	if _, err := e.Eval(algebra.NewUnion(algebra.NewRel("beer"), algebra.NewRel("brewery")), src); err == nil {
		t.Error("incompatible union must fail")
	}
	if _, err := e.Eval(algebra.NewDifference(algebra.NewRel("beer"), algebra.NewRel("brewery")), src); err == nil {
		t.Error("incompatible difference must fail")
	}
	if _, err := e.Eval(algebra.NewIntersect(algebra.NewRel("beer"), algebra.NewRel("brewery")), src); err == nil {
		t.Error("incompatible intersection must fail")
	}
	if _, err := e.Eval(algebra.NewProject([]int{9}, algebra.NewRel("beer")), src); err == nil {
		t.Error("projection errors must propagate")
	}
	badSel := algebra.NewSelect(scalar.NewCompare(value.CmpGt, scalar.NewAttr(0), scalar.NewAttr(2)), algebra.NewRel("beer"))
	if _, err := e.Eval(badSel, src); err == nil {
		t.Error("selection type errors must propagate")
	}
	badJoin := algebra.NewJoin(scalar.NewCompare(value.CmpGt, scalar.NewAttr(0), scalar.NewAttr(2)),
		algebra.NewRel("beer"), algebra.NewRel("brewery"))
	if _, err := e.Eval(badJoin, src); err == nil {
		t.Error("join condition errors must propagate")
	}
	badXP := algebra.NewExtProject([]scalar.Expr{scalar.NewArith(value.OpMul, scalar.NewAttr(0), scalar.NewConst(value.NewInt(2)))},
		nil, algebra.NewRel("beer"))
	if _, err := e.Eval(badXP, src); err == nil {
		t.Error("extended projection errors must propagate")
	}
	badGroup := algebra.NewGroupBy(nil, algebra.AggSum, 0, algebra.NewRel("beer"))
	if _, err := e.Eval(badGroup, src); err == nil {
		t.Error("group-by errors must propagate")
	}
	if _, err := e.Eval(algebra.NewUnique(algebra.NewRel("missing")), src); err == nil {
		t.Error("unique input errors must propagate")
	}
	if _, err := e.Eval(algebra.NewTClose(algebra.NewRel("missing")), src); err == nil {
		t.Error("tclose input errors must propagate")
	}
	if _, err := e.Eval(fakeExpr{}, src); err == nil {
		t.Error("unsupported expressions must fail")
	}
}

type fakeExpr struct{}

func (fakeExpr) Schema(algebra.Catalog) (schema.Relation, error) { return schema.Relation{}, nil }
func (fakeExpr) Children() []algebra.Expr                        { return nil }
func (fakeExpr) String() string                                  { return "fake" }
