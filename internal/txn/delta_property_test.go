package txn

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mra/internal/multiset"
	"mra/internal/schema"
	"mra/internal/storage"
	"mra/internal/tuple"
	"mra/internal/value"
)

// The delta-replay property suite: N goroutines run randomized transactions —
// read-modify-write transfers between bank accounts plus add-only event
// appends — through the MVCC manager, while every committed operation is
// recorded in an op log.  Afterwards the log is replayed serially against an
// oracle and the final database must match it exactly.  Because a validation
// bug in key-granular delta commit silently corrupts balances rather than
// failing loudly, this test is the safety net for the whole mechanism: a
// single lost, duplicated, or phantom delta breaks either the per-account
// equality, the conservation total, or the event cardinality.

const (
	propAccounts       = 16
	propInitialBalance = 1000
)

// committedOp is one committed transaction's effect, recorded for the oracle.
type committedOp struct {
	// transfer
	from, to int64
	amount   int64
	// append (event id pair), valid when isAppend
	isAppend bool
	eventG   int64
	eventSeq int64
}

// propDB builds the two-relation property database: "bank" with
// (id, balance) rows and an empty "events" (g, seq) relation.
func propDB(t *testing.T) *storage.Database {
	t.Helper()
	db := storage.NewDatabase()
	bank := schema.NewRelation("bank",
		schema.Attribute{Name: "id", Type: value.KindInt},
		schema.Attribute{Name: "balance", Type: value.KindInt})
	events := schema.NewRelation("events",
		schema.Attribute{Name: "g", Type: value.KindInt},
		schema.Attribute{Name: "seq", Type: value.KindInt})
	for _, s := range []schema.Relation{bank, events} {
		if err := db.CreateRelation(s); err != nil {
			t.Fatal(err)
		}
	}
	seed := multiset.New(bank)
	for id := 0; id < propAccounts; id++ {
		seed.Add(tuple.Ints(int64(id), propInitialBalance), 1)
	}
	if _, err := db.Apply(map[string]*multiset.Relation{"bank": seed}); err != nil {
		t.Fatal(err)
	}
	return db
}

// balanceOf returns account id's balance in a (id, balance) relation.
func balanceOf(t *testing.T, r *multiset.Relation, id int64) (int64, bool) {
	t.Helper()
	var got int64
	found := false
	r.Each(func(tp tuple.Tuple, _ uint64) bool {
		if tp.At(0).Int() == id {
			got, found = tp.At(1).Int(), true
			return false
		}
		return true
	})
	return got, found
}

// TestDeltaReplayPropertyConservation is the randomized linearizability-style
// battery over the key-granular commit path, run at every matrix parallelism
// degree.  Transfers retry on conflict (they touch overlapping keys when two
// goroutines pick the same account); event appends write fresh keys and must
// therefore never conflict.  The serial oracle replay asserts per-account
// balances, total conservation, event cardinality, and one logical-time step
// per committed transaction.
func TestDeltaReplayPropertyConservation(t *testing.T) {
	const goroutines = 8
	const opsEach = 12
	const maxRetries = 200
	for _, workers := range matrixWorkers {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			db := propDB(t)
			base := db.LogicalTime()
			mgr := NewManager(db)

			var mu sync.Mutex
			var log []committedOp

			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(workers)*1000 + g))
					seq := int64(0)
					for i := 0; i < opsEach; i++ {
						if rng.Intn(3) == 0 {
							// Add-only event append under a fresh key: this
							// must commit first try, every time.
							tx := mgr.BeginTx(TxOptions{Workers: workers})
							cur, _ := tx.Relation("events")
							next := cur.Clone()
							next.Add(tuple.Ints(g, seq), 1)
							if err := tx.Replace("events", next); err != nil {
								t.Error(err)
								return
							}
							if err := tx.Commit(); err != nil {
								t.Errorf("fresh-key append conflicted: %v", err)
								return
							}
							mu.Lock()
							log = append(log, committedOp{isAppend: true, eventG: g, eventSeq: seq})
							mu.Unlock()
							seq++
							continue
						}
						from := int64(rng.Intn(propAccounts))
						to := int64(rng.Intn(propAccounts - 1))
						if to >= from {
							to++
						}
						amount := int64(1 + rng.Intn(50))
						committed := false
						for retry := 0; retry < maxRetries; retry++ {
							tx := mgr.BeginTx(TxOptions{Workers: workers})
							cur, _ := tx.Relation("bank")
							fb, okF := balanceOf(t, cur, from)
							tb, okT := balanceOf(t, cur, to)
							if !okF || !okT {
								t.Errorf("accounts %d/%d missing from snapshot", from, to)
								return
							}
							next := cur.Clone()
							next.Remove(tuple.Ints(from, fb), 1)
							next.Add(tuple.Ints(from, fb-amount), 1)
							next.Remove(tuple.Ints(to, tb), 1)
							next.Add(tuple.Ints(to, tb+amount), 1)
							if err := tx.Replace("bank", next); err != nil {
								t.Error(err)
								return
							}
							err := tx.Commit()
							if err == nil {
								mu.Lock()
								log = append(log, committedOp{from: from, to: to, amount: amount})
								mu.Unlock()
								committed = true
								break
							}
							if !errors.Is(err, ErrConflict) {
								t.Errorf("unexpected commit error: %v", err)
								return
							}
						}
						if !committed {
							t.Errorf("transfer %d→%d starved past %d retries", from, to, maxRetries)
							return
						}
					}
				}(int64(g))
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			// Serial oracle replay: transfers are read-modify-writes that each
			// committed exactly once, so replaying the committed set in any
			// order reproduces the per-account balances.
			oracle := make(map[int64]int64, propAccounts)
			for id := int64(0); id < propAccounts; id++ {
				oracle[id] = propInitialBalance
			}
			appends := 0
			for _, op := range log {
				if op.isAppend {
					appends++
					continue
				}
				oracle[op.from] -= op.amount
				oracle[op.to] += op.amount
			}

			final, _ := db.Relation("bank")
			var sum int64
			for id := int64(0); id < propAccounts; id++ {
				got, ok := balanceOf(t, final, id)
				if !ok {
					t.Fatalf("account %d vanished", id)
				}
				if got != oracle[id] {
					t.Fatalf("account %d = %d, oracle says %d (a delta was lost, duplicated, or mismerged)",
						id, got, oracle[id])
				}
				sum += got
			}
			if want := int64(propAccounts * propInitialBalance); sum != want {
				t.Fatalf("conservation violated: total = %d, want %d", sum, want)
			}
			if got := final.Cardinality(); got != propAccounts {
				t.Fatalf("bank cardinality = %d, want %d (phantom or lost rows)", got, propAccounts)
			}
			events, _ := db.Relation("events")
			if got := events.Cardinality(); got != uint64(appends) {
				t.Fatalf("events cardinality = %d, want %d committed appends", got, appends)
			}
			if got, want := db.LogicalTime()-base, uint64(len(log)); got != want {
				t.Fatalf("logical time advanced %d, want one transition per committed transaction (%d)", got, want)
			}
			t.Logf("workers=%d committed=%d (appends=%d)", workers, len(log), appends)
		})
	}
}
