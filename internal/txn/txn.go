// Package txn implements transactions over the multi-set relational storage
// engine (Definition 4.3 of Grefen & de By, ICDE 1994).
//
// A transaction encloses an extended relational algebra program in transaction
// brackets.  During execution the database passes through intermediate states
// D_t.0 … D_t.n that may contain temporary relations created by assignment
// statements; these states have no semantics beyond the transaction.  The end
// bracket either commits — temporary relations are discarded and D_t.n is
// installed as D_{t+1} — or aborts, in which case D_t is preserved unchanged
// (the atomicity property: T(D) = D_t.n or T(D) = D).
//
// Isolation is multi-version snapshot isolation with key-granular validation:
// Begin captures a copy-on-write snapshot of the database (O(1) per
// relation), every read of the transaction resolves against that snapshot,
// and Commit diffs the transaction's workspace against the snapshot into
// Add/Remove delta multisets (the paper's bag semantics makes a transaction's
// effect on a relation exactly such a pair).  First-committer-wins validation
// then runs per tuple key (hash) against the storage engine's recent-writer
// key log: concurrent writers of the same relation conflict only when their
// deltas actually touch overlapping keys, and deltas that commute — disjoint
// keys, or pure additions of the same key (bag union is commutative) —
// merge-install without aborting.  Readers never block writers or each other.
//
// TxOptions.Serializable extends validation to the keys the transaction
// observed: commit aborts with ErrConflict when any key contained in a
// snapshot instance the transaction read was touched by a concurrent
// committer.  Tuples inserted concurrently under fresh keys are phantoms this
// observed-key validation deliberately admits — it is precision over the keys
// that existed, not full predicate locking.
package txn

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"mra/internal/algebra"
	"mra/internal/eval"
	"mra/internal/multiset"
	"mra/internal/schema"
	"mra/internal/stats"
	"mra/internal/stmt"
	"mra/internal/storage"
)

// Transaction lifecycle errors.
var (
	// ErrDone is returned when a finished (committed or aborted) transaction
	// is used again.
	ErrDone = errors.New("txn: transaction already finished")
	// ErrConflict is returned at commit when another transaction has committed
	// a change to a relation this transaction read or wrote.
	ErrConflict = errors.New("txn: write conflict, transaction aborted")
	// ErrReservedName is returned when a temporary relation would shadow a
	// database relation.
	ErrReservedName = errors.New("txn: name already denotes a database relation")
)

// Manager hands out transactions over one database.  Concurrency control is
// multi-version and optimistic (snapshot isolation): each Begin captures an
// O(1) copy-on-write snapshot of the whole database, so readers never block
// writers or each other and every statement of a transaction sees one
// consistent state; Commit runs first-committer-wins validation of the write
// set against relation versions advanced since the snapshot, and loses with
// ErrConflict when a concurrent committer got there first.
//
// A Manager is safe for concurrent use: sessions Begin, evaluate and Commit
// in parallel, and only the validate-and-install step of a commit briefly
// serialises on the storage engine's lock.
type Manager struct {
	db     *storage.Database
	nextID atomic.Uint64
	// defaultWorkers and defaultMemLimit seed the options of transactions
	// begun without explicit TxOptions; they are atomics so sessions can
	// reconfigure defaults without a lock shared with Begin.
	defaultWorkers  atomic.Int64
	defaultMemLimit atomic.Int64
}

// TxOptions configures one transaction.  The zero value inherits the
// manager's defaults.
type TxOptions struct {
	// Workers is the parallelism degree of the transaction's evaluation
	// engine; at or below zero the manager default applies (and a default at
	// or below 1 means serial evaluation).
	Workers int
	// MemoryLimit is the per-query memory budget in bytes.  Zero inherits the
	// manager default; a negative value disables enforcement for this
	// transaction even when a default budget is set.
	MemoryLimit int64
	// Serializable additionally validates the transaction's observed keys at
	// commit: the transaction aborts with ErrConflict when any key contained
	// in a snapshot instance it read — not just keys it wrote — was touched
	// by a concurrent committer.  Readers of untouched keys never abort, even
	// on hot relations.  Tuples concurrently inserted under fresh keys are
	// phantoms this validation admits.  Off (the default) commits validate
	// the delta write set only, i.e. snapshot isolation, which admits write
	// skew but never lost updates.
	Serializable bool
}

// NewManager returns a transaction manager over the given database.
func NewManager(db *storage.Database) *Manager {
	return &Manager{db: db}
}

// Database returns the underlying storage engine.
func (m *Manager) Database() *storage.Database { return m.db }

// SetWorkers configures the default parallelism degree handed to transactions
// begun afterwards without explicit options; at or below 1 evaluation is
// serial.  Transactions already in flight keep their degree.
func (m *Manager) SetWorkers(n int) { m.defaultWorkers.Store(int64(n)) }

// SetMemoryLimit configures the default per-query memory budget, in bytes,
// handed to transactions begun afterwards without explicit options; zero
// disables enforcement.  Queries whose operator state would exceed the budget
// fail with an error wrapping plan.ErrMemoryBudget.
func (m *Manager) SetMemoryLimit(n int64) { m.defaultMemLimit.Store(n) }

// Begin opens a new transaction on the current database state with the
// manager's default options.
func (m *Manager) Begin() *Tx { return m.BeginTx(TxOptions{}) }

// BeginTx opens a new transaction with per-transaction options, capturing a
// copy-on-write snapshot of the current database state.  The snapshot is the
// transaction's whole world: statements evaluate against it plus the
// transaction's own uncommitted changes, and commits validate against
// versions advanced past it.  BeginTx never blocks behind other
// transactions' evaluation — only behind the microseconds-long storage lock.
func (m *Manager) BeginTx(opts TxOptions) *Tx {
	workers := opts.Workers
	if workers <= 0 {
		workers = int(m.defaultWorkers.Load())
	}
	memLimit := opts.MemoryLimit
	switch {
	case memLimit == 0:
		memLimit = m.defaultMemLimit.Load()
	case memLimit < 0:
		memLimit = 0
	}
	return &Tx{
		mgr:          m,
		id:           m.nextID.Add(1),
		snap:         m.db.Snapshot(),
		serializable: opts.Serializable,
		engine:       &eval.Engine{Workers: workers, MemoryLimit: memLimit},
		workspace:    make(map[string]*multiset.Relation),
		temps:        make(map[string]*multiset.Relation),
		reads:        make(map[string]struct{}),
	}
}

// Run executes the program inside a fresh transaction and commits it,
// returning the query outputs.  On any error the transaction aborts and the
// database is left unchanged.
func (m *Manager) Run(p stmt.Program) ([]*multiset.Relation, error) {
	return m.RunContext(context.Background(), p)
}

// RunContext is Run under a lifecycle context: every query the program
// evaluates polls ctx at amortised checkpoints, and the transaction aborts —
// leaving the database unchanged — as soon as a statement fails with
// ctx.Err().  A Background context adds no cost over Run.
func (m *Manager) RunContext(ctx context.Context, p stmt.Program) ([]*multiset.Relation, error) {
	tx := m.Begin().WithContext(ctx)
	if err := p.Execute(tx); err != nil {
		tx.Abort()
		return nil, err
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	return tx.Outputs(), nil
}

// State is a transaction's lifecycle state.
type State uint8

// Transaction lifecycle states.
const (
	// StateActive means the transaction accepts statements.
	StateActive State = iota
	// StateCommitted means the end bracket installed the new database state.
	StateCommitted
	// StateAborted means the transaction's effects were discarded.
	StateAborted
)

// String renders the state.
func (s State) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateCommitted:
		return "committed"
	case StateAborted:
		return "aborted"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Tx is a single transaction: an isolated snapshot of the database plus the
// uncommitted changes of the statements executed so far.  A Tx is not safe for
// concurrent use by multiple goroutines; different transactions are — reads
// run entirely against the transaction's own snapshot, so concurrent
// transactions share no mutable state until their commits meet in the storage
// engine.
type Tx struct {
	mgr *Manager
	id  uint64
	// snap is the copy-on-write database snapshot captured at Begin; all
	// reads resolve against it, never against the live database.
	snap         *storage.Snapshot
	serializable bool
	engine       *eval.Engine
	state        State
	// ctx is the transaction's lifecycle context: every evaluation runs under
	// it, so cancelling it (or passing its deadline) aborts running queries
	// with ctx.Err().  nil means Background.
	ctx context.Context

	// workspace holds modified database relations (copy-on-write).
	workspace map[string]*multiset.Relation
	// temps holds temporary relations created by assignment statements.
	temps map[string]*multiset.Relation
	// reads records database relations read or written, for commit validation.
	reads map[string]struct{}
	// localStats holds statistics rebuilt by ANALYZE inside this transaction,
	// shadowing the snapshot's summaries for its own planning.
	localStats map[string]*stats.Table
	// outputs collects query statement results in execution order.
	outputs []*multiset.Relation
}

// WithContext sets the transaction's lifecycle context and returns the same
// transaction: subsequent query evaluations poll ctx and fail with ctx.Err()
// once it is cancelled or past its deadline.  The statement layer is
// untouched — the context rides on the transaction, not on every Statement.
func (t *Tx) WithContext(ctx context.Context) *Tx {
	t.ctx = ctx
	return t
}

// Context returns the transaction's lifecycle context, Background when none
// was set.
func (t *Tx) Context() context.Context {
	if t.ctx == nil {
		return context.Background()
	}
	return t.ctx
}

// ID returns the transaction's identifier.
func (t *Tx) ID() uint64 { return t.id }

// State returns the transaction's lifecycle state.
func (t *Tx) State() State { return t.state }

// Outputs returns the results of the query statements executed so far, in
// order.
func (t *Tx) Outputs() []*multiset.Relation {
	out := make([]*multiset.Relation, len(t.outputs))
	copy(out, t.outputs)
	return out
}

// Relation implements eval.Source over the transaction's intermediate state:
// temporaries shadow workspace copies, which shadow the snapshot captured at
// Begin.  Reads never touch the live database, so a long-running reader is
// invisible to concurrent writers.
func (t *Tx) Relation(name string) (*multiset.Relation, bool) {
	key := strings.ToLower(name)
	if r, ok := t.temps[key]; ok {
		return r, true
	}
	if r, ok := t.workspace[key]; ok {
		return r, true
	}
	r, ok := t.snap.Relation(name)
	if ok {
		t.reads[key] = struct{}{}
	}
	return r, ok
}

// TableStats implements plan.TableStatsSource (via eval's source adapter)
// over the snapshot captured at Begin, so queries inside the transaction plan
// against the statistics of the version they read.  Local analyzes shadow the
// snapshot; statistics are advisory planner input, so workspace modifications
// merely make them slightly stale until commit.
func (t *Tx) TableStats(name string) (*stats.Table, bool) {
	if t.localStats != nil {
		if st, ok := t.localStats[strings.ToLower(name)]; ok {
			return st, true
		}
	}
	return t.snap.TableStats(name)
}

// AnalyzeRelation implements the optional statement hook behind the ANALYZE
// statement: it rebuilds statistics for the named relation from the
// transaction's own view (temporaries and workspace included) and installs
// them both transaction-locally and — because statistics are advisory
// metadata, not versioned data — into the live database when the relation is
// an unmodified database relation, so later transactions benefit without an
// explicit commit.
func (t *Tx) AnalyzeRelation(name string) error {
	if name == "" {
		// Bare ANALYZE: every relation visible to this transaction.
		for _, n := range t.snap.Names() {
			if err := t.AnalyzeRelation(n); err != nil {
				return err
			}
		}
		for n := range t.temps {
			if err := t.AnalyzeRelation(n); err != nil {
				return err
			}
		}
		return nil
	}
	key := strings.ToLower(name)
	if _, ok := t.temps[key]; !ok {
		if _, ok := t.workspace[key]; !ok {
			// Unmodified database relation: analyze the live instance so the
			// summary outlives this transaction.
			st, err := t.mgr.db.Analyze(name)
			if err != nil {
				return err
			}
			if t.localStats == nil {
				t.localStats = make(map[string]*stats.Table)
			}
			t.localStats[key] = st
			return nil
		}
	}
	r, ok := t.Relation(name)
	if !ok {
		return fmt.Errorf("txn: analyze: unknown relation %q", name)
	}
	if t.localStats == nil {
		t.localStats = make(map[string]*stats.Table)
	}
	t.localStats[key] = stats.Analyze(r, t.snap.Version())
	return nil
}

// Catalog implements stmt.Context.
func (t *Tx) Catalog() algebra.Catalog { return txCatalog{t} }

// txCatalog resolves schemas against the transaction's intermediate state.
type txCatalog struct{ t *Tx }

// RelationSchema implements algebra.Catalog.
func (c txCatalog) RelationSchema(name string) (schema.Relation, bool) {
	r, ok := c.t.Relation(name)
	if !ok {
		return schema.Relation{}, false
	}
	return r.Schema(), true
}

// Evaluate implements stmt.Context.
func (t *Tx) Evaluate(e algebra.Expr) (*multiset.Relation, error) {
	if t.state != StateActive {
		return nil, ErrDone
	}
	if err := algebra.Validate(e, t.Catalog()); err != nil {
		return nil, err
	}
	return t.engine.EvalContext(t.Context(), e, t)
}

// Current implements stmt.Context.
func (t *Tx) Current(name string) (*multiset.Relation, bool) { return t.Relation(name) }

// Replace implements stmt.Context: R ← E on a database relation, buffered in
// the transaction's workspace until commit.
func (t *Tx) Replace(name string, r *multiset.Relation) error {
	if t.state != StateActive {
		return ErrDone
	}
	key := strings.ToLower(name)
	if _, isTemp := t.temps[key]; isTemp {
		t.temps[key] = r
		return nil
	}
	cur, ok := t.snap.Relation(name)
	if !ok {
		return fmt.Errorf("%w: %q", storage.ErrNoSuchRelation, name)
	}
	if !cur.Schema().Compatible(r.Schema()) {
		return fmt.Errorf("%w: relation %q expects %s, got %s", storage.ErrSchemaMismatch, name, cur.Schema(), r.Schema())
	}
	t.reads[key] = struct{}{}
	t.workspace[key] = r.WithSchema(cur.Schema())
	return nil
}

// Assign implements stmt.Context: binds a temporary relational variable.  The
// name must not collide with a database relation.
func (t *Tx) Assign(name string, r *multiset.Relation) error {
	if t.state != StateActive {
		return ErrDone
	}
	key := strings.ToLower(name)
	if _, exists := t.snap.Relation(name); exists {
		return fmt.Errorf("%w: %q", ErrReservedName, name)
	}
	t.temps[key] = r.WithSchema(r.Schema().Rename(name))
	return nil
}

// Output implements stmt.Context.
func (t *Tx) Output(r *multiset.Relation) { t.outputs = append(t.outputs, r) }

// Exec runs a single statement inside the transaction.
func (t *Tx) Exec(s stmt.Statement) error {
	if t.state != StateActive {
		return ErrDone
	}
	return s.Execute(t)
}

// Run executes a whole program inside the transaction.
func (t *Tx) Run(p stmt.Program) error {
	if t.state != StateActive {
		return ErrDone
	}
	return p.Execute(t)
}

// Commit ends the transaction: temporary relations are discarded, the
// transaction's effect on every modified database relation is diffed against
// its snapshot into an Add/Remove delta multiset, and the deltas are
// merge-installed atomically as D_{t+1}, advancing the logical time.
// Validation is first-committer-wins per tuple key: Commit aborts with
// ErrConflict only when a concurrent transaction committed a change to a key
// this transaction's delta removes (or, for keys it only adds, a concurrent
// removal of them; also, under TxOptions.Serializable, any key it observed).
// Writers touching disjoint keys of the same relation commit concurrently.
// Validation and installation are one atomic step in the storage engine, so
// of two racing committers of a genuinely conflicting key exactly one wins.
// A transaction whose workspace ends up identical to its snapshot commits as
// read-only: no transition, no logical-time advance.
func (t *Tx) Commit() error {
	if t.state != StateActive {
		return ErrDone
	}
	defer t.snap.Release()
	writes := make(map[string]storage.Delta, len(t.workspace))
	for name, next := range t.workspace {
		base, ok := t.snap.Relation(name)
		if !ok {
			// Replace validated existence against the snapshot, so this cannot
			// happen; keep the delta empty and let storage report the name.
			base = multiset.New(next.Schema())
		}
		add, remove := multiset.Diff(base, next)
		writes[name] = storage.Delta{Add: add, Remove: remove}
	}
	var readSets map[string]*multiset.Relation
	if t.serializable {
		readSets = make(map[string]*multiset.Relation, len(t.reads))
		for name := range t.reads {
			if observed, ok := t.snap.Relation(name); ok {
				readSets[name] = observed
			}
		}
	}
	allEmpty := true
	for _, delta := range writes {
		if !delta.Empty() {
			allEmpty = false
			break
		}
	}
	var err error
	if allEmpty {
		// Read-only (or no-op) transaction: its snapshot was consistent by
		// construction, nothing to install, no transition.  Serializable
		// transactions still re-validate their observed keys.
		if t.serializable {
			err = t.mgr.db.ValidateReads(t.snap.Version(), readSets)
		}
	} else {
		_, err = t.mgr.db.ApplyDeltas(t.snap.Version(), writes, readSets)
	}
	if err != nil {
		t.state = StateAborted
		if errors.Is(err, storage.ErrVersionConflict) {
			return fmt.Errorf("%w: %v", ErrConflict, err)
		}
		return err
	}
	t.state = StateCommitted
	return nil
}

// Abort ends the transaction and discards all of its effects; the database
// state D_t is preserved unchanged.
func (t *Tx) Abort() {
	if t.state != StateActive {
		return
	}
	t.state = StateAborted
	t.snap.Release()
	t.workspace = nil
	t.temps = nil
}
