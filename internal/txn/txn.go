// Package txn implements transactions over the multi-set relational storage
// engine (Definition 4.3 of Grefen & de By, ICDE 1994).
//
// A transaction encloses an extended relational algebra program in transaction
// brackets.  During execution the database passes through intermediate states
// D_t.0 … D_t.n that may contain temporary relations created by assignment
// statements; these states have no semantics beyond the transaction.  The end
// bracket either commits — temporary relations are discarded and D_t.n is
// installed as D_{t+1} — or aborts, in which case D_t is preserved unchanged
// (the atomicity property: T(D) = D_t.n or T(D) = D).
package txn

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"mra/internal/algebra"
	"mra/internal/eval"
	"mra/internal/multiset"
	"mra/internal/schema"
	"mra/internal/stmt"
	"mra/internal/storage"
)

// Transaction lifecycle errors.
var (
	// ErrDone is returned when a finished (committed or aborted) transaction
	// is used again.
	ErrDone = errors.New("txn: transaction already finished")
	// ErrConflict is returned at commit when another transaction has committed
	// a change to a relation this transaction read or wrote.
	ErrConflict = errors.New("txn: write conflict, transaction aborted")
	// ErrReservedName is returned when a temporary relation would shadow a
	// database relation.
	ErrReservedName = errors.New("txn: name already denotes a database relation")
)

// Manager hands out transactions over one database and serialises their
// commits.  Isolation is optimistic: each transaction works on a snapshot and
// validates at commit time that the relations it touched were not changed by
// a concurrent committer.
type Manager struct {
	db *storage.Database

	mu     sync.Mutex
	nextID uint64
	// workers is the parallelism degree handed to each new transaction's
	// evaluation engine; at or below 1 evaluation is serial.  Guarded by mu
	// (SetWorkers may race with concurrent Begin calls otherwise).
	workers int
	// memLimit is the per-query memory budget, in bytes, handed to each new
	// transaction's evaluation engine; zero disables enforcement.  Guarded by
	// mu like workers.
	memLimit int64
	// commitTime records, per relation name, the logical time of its last
	// committed change; validation compares it with the transaction's start
	// time.
	commitTime map[string]uint64
}

// NewManager returns a transaction manager over the given database.
func NewManager(db *storage.Database) *Manager {
	return &Manager{db: db, commitTime: make(map[string]uint64)}
}

// Database returns the underlying storage engine.
func (m *Manager) Database() *storage.Database { return m.db }

// SetWorkers configures the parallelism degree handed to transactions begun
// afterwards; at or below 1 evaluation is serial.  Transactions already in
// flight keep their degree.
func (m *Manager) SetWorkers(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.workers = n
}

// SetMemoryLimit configures the per-query memory budget, in bytes, handed to
// transactions begun afterwards; zero disables enforcement.  Queries whose
// operator state would exceed the budget fail with an error wrapping
// plan.ErrMemoryBudget.
func (m *Manager) SetMemoryLimit(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.memLimit = n
}

// Begin opens a new transaction on the current database state.
func (m *Manager) Begin() *Tx {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	return &Tx{
		mgr:       m,
		id:        m.nextID,
		startTime: m.db.LogicalTime(),
		engine:    &eval.Engine{Workers: m.workers, MemoryLimit: m.memLimit},
		workspace: make(map[string]*multiset.Relation),
		temps:     make(map[string]*multiset.Relation),
		reads:     make(map[string]struct{}),
	}
}

// Run executes the program inside a fresh transaction and commits it,
// returning the query outputs.  On any error the transaction aborts and the
// database is left unchanged.
func (m *Manager) Run(p stmt.Program) ([]*multiset.Relation, error) {
	return m.RunContext(context.Background(), p)
}

// RunContext is Run under a lifecycle context: every query the program
// evaluates polls ctx at amortised checkpoints, and the transaction aborts —
// leaving the database unchanged — as soon as a statement fails with
// ctx.Err().  A Background context adds no cost over Run.
func (m *Manager) RunContext(ctx context.Context, p stmt.Program) ([]*multiset.Relation, error) {
	tx := m.Begin().WithContext(ctx)
	if err := p.Execute(tx); err != nil {
		tx.Abort()
		return nil, err
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	return tx.Outputs(), nil
}

// State is a transaction's lifecycle state.
type State uint8

// Transaction lifecycle states.
const (
	// StateActive means the transaction accepts statements.
	StateActive State = iota
	// StateCommitted means the end bracket installed the new database state.
	StateCommitted
	// StateAborted means the transaction's effects were discarded.
	StateAborted
)

// String renders the state.
func (s State) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateCommitted:
		return "committed"
	case StateAborted:
		return "aborted"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Tx is a single transaction: an isolated view of the database plus the
// uncommitted changes of the statements executed so far.  A Tx is not safe for
// concurrent use by multiple goroutines; different transactions are.
type Tx struct {
	mgr       *Manager
	id        uint64
	startTime uint64
	engine    *eval.Engine
	state     State
	// ctx is the transaction's lifecycle context: every evaluation runs under
	// it, so cancelling it (or passing its deadline) aborts running queries
	// with ctx.Err().  nil means Background.
	ctx context.Context

	// workspace holds modified database relations (copy-on-write).
	workspace map[string]*multiset.Relation
	// temps holds temporary relations created by assignment statements.
	temps map[string]*multiset.Relation
	// reads records database relations read or written, for commit validation.
	reads map[string]struct{}
	// outputs collects query statement results in execution order.
	outputs []*multiset.Relation
}

// WithContext sets the transaction's lifecycle context and returns the same
// transaction: subsequent query evaluations poll ctx and fail with ctx.Err()
// once it is cancelled or past its deadline.  The statement layer is
// untouched — the context rides on the transaction, not on every Statement.
func (t *Tx) WithContext(ctx context.Context) *Tx {
	t.ctx = ctx
	return t
}

// Context returns the transaction's lifecycle context, Background when none
// was set.
func (t *Tx) Context() context.Context {
	if t.ctx == nil {
		return context.Background()
	}
	return t.ctx
}

// ID returns the transaction's identifier.
func (t *Tx) ID() uint64 { return t.id }

// State returns the transaction's lifecycle state.
func (t *Tx) State() State { return t.state }

// Outputs returns the results of the query statements executed so far, in
// order.
func (t *Tx) Outputs() []*multiset.Relation {
	out := make([]*multiset.Relation, len(t.outputs))
	copy(out, t.outputs)
	return out
}

// Relation implements eval.Source over the transaction's intermediate state:
// temporaries shadow workspace copies, which shadow the committed state.
func (t *Tx) Relation(name string) (*multiset.Relation, bool) {
	key := strings.ToLower(name)
	if r, ok := t.temps[key]; ok {
		return r, true
	}
	if r, ok := t.workspace[key]; ok {
		return r, true
	}
	r, ok := t.mgr.db.Relation(name)
	if ok {
		t.reads[key] = struct{}{}
	}
	return r, ok
}

// Catalog implements stmt.Context.
func (t *Tx) Catalog() algebra.Catalog { return txCatalog{t} }

// txCatalog resolves schemas against the transaction's intermediate state.
type txCatalog struct{ t *Tx }

// RelationSchema implements algebra.Catalog.
func (c txCatalog) RelationSchema(name string) (schema.Relation, bool) {
	r, ok := c.t.Relation(name)
	if !ok {
		return schema.Relation{}, false
	}
	return r.Schema(), true
}

// Evaluate implements stmt.Context.
func (t *Tx) Evaluate(e algebra.Expr) (*multiset.Relation, error) {
	if t.state != StateActive {
		return nil, ErrDone
	}
	if err := algebra.Validate(e, t.Catalog()); err != nil {
		return nil, err
	}
	return t.engine.EvalContext(t.Context(), e, t)
}

// Current implements stmt.Context.
func (t *Tx) Current(name string) (*multiset.Relation, bool) { return t.Relation(name) }

// Replace implements stmt.Context: R ← E on a database relation, buffered in
// the transaction's workspace until commit.
func (t *Tx) Replace(name string, r *multiset.Relation) error {
	if t.state != StateActive {
		return ErrDone
	}
	key := strings.ToLower(name)
	if _, isTemp := t.temps[key]; isTemp {
		t.temps[key] = r
		return nil
	}
	cur, ok := t.mgr.db.Relation(name)
	if !ok {
		return fmt.Errorf("%w: %q", storage.ErrNoSuchRelation, name)
	}
	if !cur.Schema().Compatible(r.Schema()) {
		return fmt.Errorf("%w: relation %q expects %s, got %s", storage.ErrSchemaMismatch, name, cur.Schema(), r.Schema())
	}
	t.reads[key] = struct{}{}
	t.workspace[key] = r.WithSchema(cur.Schema())
	return nil
}

// Assign implements stmt.Context: binds a temporary relational variable.  The
// name must not collide with a database relation.
func (t *Tx) Assign(name string, r *multiset.Relation) error {
	if t.state != StateActive {
		return ErrDone
	}
	key := strings.ToLower(name)
	if _, exists := t.mgr.db.Relation(name); exists {
		return fmt.Errorf("%w: %q", ErrReservedName, name)
	}
	t.temps[key] = r.WithSchema(r.Schema().Rename(name))
	return nil
}

// Output implements stmt.Context.
func (t *Tx) Output(r *multiset.Relation) { t.outputs = append(t.outputs, r) }

// Exec runs a single statement inside the transaction.
func (t *Tx) Exec(s stmt.Statement) error {
	if t.state != StateActive {
		return ErrDone
	}
	return s.Execute(t)
}

// Run executes a whole program inside the transaction.
func (t *Tx) Run(p stmt.Program) error {
	if t.state != StateActive {
		return ErrDone
	}
	return p.Execute(t)
}

// Commit ends the transaction: temporary relations are discarded, the modified
// database relations are installed atomically as D_{t+1}, and the logical time
// advances.  If a concurrent transaction committed a change to any relation
// this transaction read or wrote, Commit aborts with ErrConflict and the
// database remains unchanged.
func (t *Tx) Commit() error {
	if t.state != StateActive {
		return ErrDone
	}
	m := t.mgr
	m.mu.Lock()
	defer m.mu.Unlock()

	// Optimistic validation: no relation we depend on may have been committed
	// after our snapshot time.
	for name := range t.reads {
		if ct, ok := m.commitTime[name]; ok && ct > t.startTime {
			t.state = StateAborted
			return fmt.Errorf("%w: relation %q changed at t=%d after snapshot t=%d", ErrConflict, name, ct, t.startTime)
		}
	}
	if len(t.workspace) == 0 {
		// Read-only transaction: nothing to install, no transition.
		t.state = StateCommitted
		return nil
	}
	tr, err := m.db.Apply(t.workspace)
	if err != nil {
		t.state = StateAborted
		return err
	}
	for _, name := range tr.Changed {
		m.commitTime[strings.ToLower(name)] = tr.To
	}
	t.state = StateCommitted
	return nil
}

// Abort ends the transaction and discards all of its effects; the database
// state D_t is preserved unchanged.
func (t *Tx) Abort() {
	if t.state != StateActive {
		return
	}
	t.state = StateAborted
	t.workspace = nil
	t.temps = nil
}
