package txn

import (
	"errors"
	"strings"
	"testing"

	"mra/internal/algebra"
	"mra/internal/multiset"
	"mra/internal/scalar"
	"mra/internal/schema"
	"mra/internal/stmt"
	"mra/internal/storage"
	"mra/internal/tuple"
	"mra/internal/value"
)

// newBeerManager builds the paper's beer database inside a storage engine and
// returns a transaction manager over it.
func newBeerManager(t *testing.T) *Manager {
	t.Helper()
	db := storage.NewDatabase()
	beerSchema := schema.NewRelation("beer",
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "brewery", Type: value.KindString},
		schema.Attribute{Name: "alcperc", Type: value.KindFloat},
	)
	brewerySchema := schema.NewRelation("brewery",
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "city", Type: value.KindString},
		schema.Attribute{Name: "country", Type: value.KindString},
	)
	if err := db.CreateRelation(beerSchema); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateRelation(brewerySchema); err != nil {
		t.Fatal(err)
	}
	beer := multiset.New(beerSchema)
	beer.Add(tuple.New(value.NewString("pils"), value.NewString("guineken"), value.NewFloat(5.0)), 1)
	beer.Add(tuple.New(value.NewString("bock"), value.NewString("guineken"), value.NewFloat(6.5)), 1)
	beer.Add(tuple.New(value.NewString("stout"), value.NewString("guinness"), value.NewFloat(4.2)), 1)
	brewery := multiset.New(brewerySchema)
	brewery.Add(tuple.New(value.NewString("guineken"), value.NewString("amsterdam"), value.NewString("netherlands")), 1)
	brewery.Add(tuple.New(value.NewString("guinness"), value.NewString("dublin"), value.NewString("ireland")), 1)
	if _, err := db.Apply(map[string]*multiset.Relation{"beer": beer, "brewery": brewery}); err != nil {
		t.Fatal(err)
	}
	return NewManager(db)
}

func guinekenSelection() algebra.Expr {
	return algebra.NewSelect(
		scalar.NewCompare(value.CmpEq, scalar.NewAttr(1), scalar.NewConst(value.NewString("guineken"))),
		algebra.NewRel("beer"))
}

func TestQueryStatementHasNoEffect(t *testing.T) {
	m := newBeerManager(t)
	before := m.Database().LogicalTime()
	outs, err := m.Run(stmt.Program{stmt.Query{Source: algebra.NewRel("beer")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Cardinality() != 3 {
		t.Errorf("query output = %v", outs)
	}
	if m.Database().LogicalTime() != before {
		t.Error("a read-only transaction must not advance the logical time")
	}
}

func TestInsertDeleteStatements(t *testing.T) {
	m := newBeerManager(t)
	newBeer := algebra.Literal{
		Rel: schema.Anonymous(
			schema.Attribute{Name: "name", Type: value.KindString},
			schema.Attribute{Name: "brewery", Type: value.KindString},
			schema.Attribute{Name: "alcperc", Type: value.KindFloat},
		),
		Rows: [][]value.Value{
			{value.NewString("weizen"), value.NewString("guineken"), value.NewFloat(5.4)},
			{value.NewString("weizen"), value.NewString("guineken"), value.NewFloat(5.4)},
		},
	}
	if _, err := m.Run(stmt.Program{stmt.Insert{Target: "beer", Source: newBeer}}); err != nil {
		t.Fatal(err)
	}
	if got := m.Database().Cardinality("beer"); got != 5 {
		t.Errorf("after insert |beer| = %d, want 5 (duplicates preserved)", got)
	}

	// delete(beer, σ_{brewery='guinness'} beer).
	del := stmt.Delete{Target: "beer", Source: algebra.NewSelect(
		scalar.NewCompare(value.CmpEq, scalar.NewAttr(1), scalar.NewConst(value.NewString("guinness"))),
		algebra.NewRel("beer"))}
	if _, err := m.Run(stmt.Program{del}); err != nil {
		t.Fatal(err)
	}
	if got := m.Database().Cardinality("beer"); got != 4 {
		t.Errorf("after delete |beer| = %d, want 4", got)
	}
	if m.Database().LogicalTime() != 3 {
		t.Errorf("two committed updates advance time to 3, got %d", m.Database().LogicalTime())
	}
}

func TestExample41Update(t *testing.T) {
	// update(beer, σ_{brewery='guineken'} beer, (name, brewery, alcperc*1.1)).
	m := newBeerManager(t)
	up := stmt.Update{
		Target:    "beer",
		Selection: guinekenSelection(),
		Items: []scalar.Expr{
			scalar.NewAttr(0),
			scalar.NewAttr(1),
			scalar.NewArith(value.OpMul, scalar.NewAttr(2), scalar.NewConst(value.NewFloat(1.1))),
		},
	}
	if _, err := m.Run(stmt.Program{up}); err != nil {
		t.Fatal(err)
	}
	beer, _ := m.Database().Relation("beer")
	if beer.Cardinality() != 3 {
		t.Fatalf("update must preserve cardinality, got %d", beer.Cardinality())
	}
	found := 0
	beer.Each(func(tp tuple.Tuple, _ uint64) bool {
		if tp.At(1).Str() == "guineken" {
			alc := tp.At(2).Float()
			if alc > 5.49 && alc < 5.51 {
				found++ // pils 5.0 → 5.5
			}
			if alc > 7.14 && alc < 7.16 {
				found++ // bock 6.5 → 7.15
			}
		} else if tp.At(2).Float() != 4.2 {
			t.Errorf("non-guineken beer must be untouched: %v", tp)
		}
		return true
	})
	if found != 2 {
		t.Errorf("expected both guineken beers updated, found %d", found)
	}
}

func TestUpdateValidation(t *testing.T) {
	m := newBeerManager(t)
	tx := m.Begin()
	// Wrong item count.
	err := tx.Exec(stmt.Update{Target: "beer", Selection: guinekenSelection(),
		Items: []scalar.Expr{scalar.NewAttr(0)}})
	if err == nil {
		t.Error("update with a short item list must fail")
	}
	// Structure violation: string attribute replaced by a float.
	err = tx.Exec(stmt.Update{Target: "beer", Selection: guinekenSelection(),
		Items: []scalar.Expr{scalar.NewConst(value.NewFloat(1)), scalar.NewAttr(1), scalar.NewAttr(2)}})
	if err == nil {
		t.Error("update violating the schema must fail")
	}
	// Untypeable item.
	err = tx.Exec(stmt.Update{Target: "beer", Selection: guinekenSelection(),
		Items: []scalar.Expr{scalar.NewArith(value.OpMul, scalar.NewAttr(0), scalar.NewConst(value.NewInt(2))), scalar.NewAttr(1), scalar.NewAttr(2)}})
	if err == nil {
		t.Error("untypeable update item must fail")
	}
	// Unknown target.
	err = tx.Exec(stmt.Update{Target: "wine", Selection: guinekenSelection(), Items: []scalar.Expr{scalar.NewAttr(0)}})
	if err == nil {
		t.Error("unknown target must fail")
	}
	// Incompatible selection schema.
	err = tx.Exec(stmt.Insert{Target: "beer", Source: algebra.NewRel("brewery")})
	if err == nil {
		t.Error("incompatible insert source must fail")
	}
	tx.Abort()
	if m.Database().LogicalTime() != 1 {
		t.Error("failed statements must not change the database")
	}
}

func TestAssignmentAndTemporaries(t *testing.T) {
	m := newBeerManager(t)
	p := stmt.Program{
		stmt.Assign{Name: "dutch", Source: guinekenSelection()},
		stmt.Query{Source: algebra.NewProject([]int{0}, algebra.NewRel("dutch"))},
	}
	outs, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Cardinality() != 2 {
		t.Errorf("temporary-backed query output = %v", outs)
	}
	// Temporaries vanish after the transaction.
	if _, ok := m.Database().Relation("dutch"); ok {
		t.Error("temporary relations must not survive the transaction")
	}
	// Shadowing a database relation is rejected.
	tx := m.Begin()
	if err := tx.Exec(stmt.Assign{Name: "beer", Source: guinekenSelection()}); !errors.Is(err, ErrReservedName) {
		t.Errorf("assignment shadowing a database relation = %v", err)
	}
	tx.Abort()
	// Temporaries can be targets of further statements inside the program.
	p2 := stmt.Program{
		stmt.Assign{Name: "tmp", Source: algebra.NewRel("beer")},
		stmt.Delete{Target: "tmp", Source: guinekenSelection()},
		stmt.Query{Source: algebra.NewRel("tmp")},
	}
	outs2, err := m.Run(p2)
	if err != nil {
		t.Fatal(err)
	}
	if outs2[0].Cardinality() != 1 {
		t.Errorf("delete on a temporary = %v", outs2[0])
	}
	if m.Database().Cardinality("beer") != 3 {
		t.Error("statements on temporaries must not touch database relations")
	}
}

func TestAtomicityOnAbort(t *testing.T) {
	m := newBeerManager(t)
	beforeTime := m.Database().LogicalTime()
	beforeBeer, _ := m.Database().Relation("beer")

	// A program whose final statement fails: the transaction aborts and the
	// database must be exactly the pre-transaction state D_t.
	bad := stmt.Program{
		stmt.Delete{Target: "beer", Source: guinekenSelection()},
		stmt.Insert{Target: "beer", Source: algebra.NewRel("nosuch")},
	}
	if _, err := m.Run(bad); err == nil {
		t.Fatal("program with a failing statement must error")
	}
	afterBeer, _ := m.Database().Relation("beer")
	if !beforeBeer.Equal(afterBeer) {
		t.Error("atomicity violated: partial effects visible after abort")
	}
	if m.Database().LogicalTime() != beforeTime {
		t.Error("aborted transaction must not advance the logical time")
	}

	// Explicit Abort discards buffered changes.
	tx := m.Begin()
	if err := tx.Exec(stmt.Delete{Target: "beer", Source: algebra.NewRel("beer")}); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if got := m.Database().Cardinality("beer"); got != 3 {
		t.Errorf("aborted delete leaked: |beer| = %d", got)
	}
	if tx.State() != StateAborted {
		t.Errorf("state = %v", tx.State())
	}
	// Finished transactions refuse further work.
	if err := tx.Exec(stmt.Query{Source: algebra.NewRel("beer")}); !errors.Is(err, ErrDone) {
		t.Errorf("exec on finished tx = %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrDone) {
		t.Errorf("commit on finished tx = %v", err)
	}
	if err := tx.Run(stmt.Program{}); !errors.Is(err, ErrDone) {
		t.Errorf("run on finished tx = %v", err)
	}
	if _, err := tx.Evaluate(algebra.NewRel("beer")); !errors.Is(err, ErrDone) {
		t.Errorf("evaluate on finished tx = %v", err)
	}
	if err := tx.Replace("beer", beforeBeer); !errors.Is(err, ErrDone) {
		t.Errorf("replace on finished tx = %v", err)
	}
	if err := tx.Assign("x", beforeBeer); !errors.Is(err, ErrDone) {
		t.Errorf("assign on finished tx = %v", err)
	}
	tx.Abort() // double abort is a no-op
}

func TestIsolationUncommittedChangesInvisible(t *testing.T) {
	m := newBeerManager(t)
	writer := m.Begin()
	if err := writer.Exec(stmt.Delete{Target: "beer", Source: algebra.NewRel("beer")}); err != nil {
		t.Fatal(err)
	}
	// The writer sees its own intermediate state D_t.i ...
	mine, _ := writer.Relation("beer")
	if mine.Cardinality() != 0 {
		t.Error("writer must see its own uncommitted delete")
	}
	// ... but a concurrent reader still sees D_t.
	reader := m.Begin()
	theirs, _ := reader.Relation("beer")
	if theirs.Cardinality() != 3 {
		t.Errorf("reader must see the pre-transaction state, got %d", theirs.Cardinality())
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	if writer.State() != StateCommitted {
		t.Errorf("writer state = %v", writer.State())
	}
	// New transactions see the committed state D_{t+1}.
	later := m.Begin()
	now, _ := later.Relation("beer")
	if now.Cardinality() != 0 {
		t.Errorf("committed delete must be visible, got %d", now.Cardinality())
	}
	later.Abort()
	reader.Abort()
}

func TestWriteConflictDetection(t *testing.T) {
	m := newBeerManager(t)
	t1 := m.Begin()
	t2 := m.Begin()
	del := stmt.Delete{Target: "beer", Source: guinekenSelection()}
	if err := t1.Exec(del); err != nil {
		t.Fatal(err)
	}
	if err := t2.Exec(del); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); !errors.Is(err, ErrConflict) {
		t.Errorf("second committer must detect the conflict, got %v", err)
	}
	if t2.State() != StateAborted {
		t.Errorf("conflicted transaction state = %v", t2.State())
	}
	if m.Database().Cardinality("beer") != 1 {
		t.Errorf("only the first transaction's effect must be installed, |beer| = %d", m.Database().Cardinality("beer"))
	}
	// Readers of unrelated relations are not disturbed.
	t3 := m.Begin()
	if err := t3.Exec(stmt.Query{Source: algebra.NewRel("brewery")}); err != nil {
		t.Fatal(err)
	}
	if err := t3.Commit(); err != nil {
		t.Errorf("read-only commit after an unrelated write: %v", err)
	}
}

func TestManagerRunOutputsAndState(t *testing.T) {
	m := newBeerManager(t)
	if m.Database() == nil {
		t.Fatal("manager must expose its database")
	}
	tx := m.Begin()
	if tx.ID() == 0 || tx.State() != StateActive {
		t.Errorf("fresh transaction: id=%d state=%v", tx.ID(), tx.State())
	}
	if err := tx.Run(stmt.Program{
		stmt.Query{Source: algebra.NewRel("beer")},
		stmt.Query{Source: algebra.NewRel("brewery")},
	}); err != nil {
		t.Fatal(err)
	}
	outs := tx.Outputs()
	if len(outs) != 2 || outs[0].Cardinality() != 3 || outs[1].Cardinality() != 2 {
		t.Errorf("outputs = %v", outs)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if StateActive.String() != "active" || StateCommitted.String() != "committed" || StateAborted.String() != "aborted" {
		t.Error("state strings")
	}
	if !strings.Contains(State(99).String(), "99") {
		t.Error("unknown state string")
	}
	// Run with a failing program returns the error and leaves no outputs.
	if _, err := m.Run(stmt.Program{stmt.Query{Source: algebra.NewRel("nosuch")}}); err == nil {
		t.Error("failing program must error")
	}
}

func TestEvaluateValidatesAgainstIntermediateState(t *testing.T) {
	m := newBeerManager(t)
	tx := m.Begin()
	// An expression over a temporary defined earlier in the program validates.
	if err := tx.Exec(stmt.Assign{Name: "g", Source: guinekenSelection()}); err != nil {
		t.Fatal(err)
	}
	r, err := tx.Evaluate(algebra.NewProject([]int{0}, algebra.NewRel("g")))
	if err != nil || r.Cardinality() != 2 {
		t.Errorf("evaluate over temporary = %v, %v", r, err)
	}
	// Invalid expressions are rejected before execution.
	if _, err := tx.Evaluate(algebra.NewProject([]int{9}, algebra.NewRel("beer"))); err == nil {
		t.Error("invalid expression must be rejected")
	}
	tx.Abort()
}

func TestStatementStrings(t *testing.T) {
	up := stmt.Update{Target: "beer", Selection: guinekenSelection(),
		Items: []scalar.Expr{scalar.NewAttr(0), scalar.NewAttr(1),
			scalar.NewArith(value.OpMul, scalar.NewAttr(2), scalar.NewConst(value.NewFloat(1.1)))}}
	if !strings.Contains(up.String(), "update(beer") || !strings.Contains(up.String(), "* 1.1") {
		t.Errorf("update string = %q", up.String())
	}
	ins := stmt.Insert{Target: "beer", Source: algebra.NewRel("beer")}
	if ins.String() != "insert(beer, beer)" {
		t.Errorf("insert string = %q", ins.String())
	}
	del := stmt.Delete{Target: "beer", Source: algebra.NewRel("beer")}
	if del.String() != "delete(beer, beer)" {
		t.Errorf("delete string = %q", del.String())
	}
	asg := stmt.Assign{Name: "x", Source: algebra.NewRel("beer")}
	if asg.String() != "x = beer" {
		t.Errorf("assign string = %q", asg.String())
	}
	q := stmt.Query{Source: algebra.NewRel("beer")}
	if q.String() != "?beer" {
		t.Errorf("query string = %q", q.String())
	}
	prog := stmt.Program{ins, q}
	if !strings.Contains(prog.String(), "insert(beer, beer);\n?beer;\n") {
		t.Errorf("program string = %q", prog.String())
	}
}
