package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"mra/internal/multiset"
	"mra/internal/schema"
	"mra/internal/storage"
	"mra/internal/tuple"
	"mra/internal/value"
)

// The conflict matrix: every transaction mix crossed with every parallelism
// degree, all under the race detector.  Each cell runs N concurrent
// transactions through the MVCC manager and asserts the invariants that hold
// iff isolation worked: no lost updates under direct conflicts, snapshot
// stability for readers, and conservation under concurrent transfers.

// newIntDB builds a database of single-column integer relations, one row each
// holding the given start value.
func newIntDB(t *testing.T, start int64, names ...string) *storage.Database {
	t.Helper()
	db := storage.NewDatabase()
	for _, name := range names {
		s := schema.NewRelation(name, schema.Attribute{Name: "v", Type: value.KindInt})
		if err := db.CreateRelation(s); err != nil {
			t.Fatal(err)
		}
		r := multiset.New(s)
		r.Add(tuple.Ints(start), 1)
		if _, err := db.Apply(map[string]*multiset.Relation{name: r}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// readInt returns the single integer of a one-row relation.
func readInt(t *testing.T, r *multiset.Relation) int64 {
	t.Helper()
	var got int64
	found := false
	r.Each(func(tp tuple.Tuple, n uint64) bool {
		got, found = tp.At(0).Int(), true
		return false
	})
	if !found {
		t.Fatal("relation unexpectedly empty")
	}
	return got
}

// intRel builds a one-row integer relation compatible with newIntDB's schema.
func intRel(name string, v int64) *multiset.Relation {
	s := schema.NewRelation(name, schema.Attribute{Name: "v", Type: value.KindInt})
	r := multiset.New(s)
	r.Add(tuple.Ints(v), 1)
	return r
}

// matrixWorkers is the parallelism axis of the conflict matrix.
var matrixWorkers = []int{1, 2, 4, 8}

// TestConflictMatrixDirectConflict runs N goroutines incrementing one hot
// counter.  First-committer-wins must let exactly the committed increments
// through: the final counter equals the number of successful commits, i.e. no
// lost updates, and at least one transaction must actually have conflicted.
func TestConflictMatrixDirectConflict(t *testing.T) {
	const goroutines = 16
	for _, workers := range matrixWorkers {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			db := newIntDB(t, 0, "counter")
			base := db.LogicalTime()
			mgr := NewManager(db)
			var commits, conflicts atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						tx := mgr.BeginTx(TxOptions{Workers: workers})
						cur, ok := tx.Relation("counter")
						if !ok {
							t.Error("counter relation missing in snapshot")
							return
						}
						next := intRel("counter", readInt(t, cur)+1)
						if err := tx.Replace("counter", next); err != nil {
							t.Error(err)
							return
						}
						err := tx.Commit()
						if err == nil {
							commits.Add(1)
							return
						}
						if !errors.Is(err, ErrConflict) {
							t.Errorf("unexpected commit error: %v", err)
							return
						}
						conflicts.Add(1)
					}
				}()
			}
			wg.Wait()
			final, _ := db.Relation("counter")
			if got, want := readInt(t, final), commits.Load(); got != want {
				t.Fatalf("lost update: counter = %d, committed increments = %d", got, want)
			}
			if commits.Load() != goroutines {
				t.Fatalf("every goroutine must eventually commit: %d/%d", commits.Load(), goroutines)
			}
			if got := db.LogicalTime() - base; got != uint64(goroutines) {
				t.Fatalf("logical time advanced by %d, want %d (one per committed update)", got, goroutines)
			}
			t.Logf("workers=%d commits=%d conflicts=%d", workers, commits.Load(), conflicts.Load())
		})
	}
}

// TestConflictMatrixReadersNeverBlockOrAbort runs read-only transactions
// concurrently with a stream of committing writers.  Readers must always
// commit (write-set validation has nothing to check), and both reads inside
// one transaction must observe the same snapshot value even though the live
// database moved on.
func TestConflictMatrixReadersNeverBlockOrAbort(t *testing.T) {
	const readers = 8
	const readsPerReader = 50
	for _, workers := range matrixWorkers {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			db := newIntDB(t, 0, "counter")
			mgr := NewManager(db)

			stop := make(chan struct{})
			var writerWG sync.WaitGroup
			writerWG.Add(1)
			go func() {
				defer writerWG.Done()
				for i := int64(1); ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					tx := mgr.BeginTx(TxOptions{Workers: workers})
					if err := tx.Replace("counter", intRel("counter", i)); err != nil {
						t.Error(err)
						return
					}
					if err := tx.Commit(); err != nil {
						t.Errorf("solo writer must not conflict: %v", err)
						return
					}
				}
			}()

			var wg sync.WaitGroup
			for g := 0; g < readers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < readsPerReader; i++ {
						tx := mgr.BeginTx(TxOptions{Workers: workers})
						first, ok := tx.Relation("counter")
						if !ok {
							t.Error("counter missing")
							return
						}
						v1 := readInt(t, first)
						second, _ := tx.Relation("counter")
						if v2 := readInt(t, second); v1 != v2 {
							t.Errorf("snapshot moved inside a transaction: %d then %d", v1, v2)
							return
						}
						if err := tx.Commit(); err != nil {
							t.Errorf("read-only transaction aborted: %v", err)
							return
						}
					}
				}()
			}
			wg.Wait()
			close(stop)
			writerWG.Wait()
		})
	}
}

// TestConflictMatrixWriteSkew drives the classic write-skew pair — read x
// write y against read y write x — through both isolation levels.  Plain
// snapshot isolation admits the skew (both may commit, since write sets are
// disjoint); Serializable must abort at least one of any overlapping pair,
// preserving the invariant x + y ≥ 0.
func TestConflictMatrixWriteSkew(t *testing.T) {
	const pairs = 24
	for _, workers := range matrixWorkers {
		for _, serializable := range []bool{false, true} {
			name := fmt.Sprintf("workers=%d/serializable=%v", workers, serializable)
			t.Run(name, func(t *testing.T) {
				db := newIntDB(t, 1, "x", "y")
				mgr := NewManager(db)

				// withdraw reads both rows and, when the invariant allows,
				// zeroes its own side — the paper-classic skew shape.
				withdraw := func(readRel, writeRel string) error {
					tx := mgr.BeginTx(TxOptions{Workers: workers, Serializable: serializable})
					rr, _ := tx.Relation(readRel)
					wr, _ := tx.Relation(writeRel)
					if readInt(t, rr)+readInt(t, wr) < 1 {
						tx.Abort()
						return nil
					}
					if err := tx.Replace(writeRel, intRel(writeRel, readInt(t, wr)-1)); err != nil {
						tx.Abort()
						return err
					}
					return tx.Commit()
				}

				var wg sync.WaitGroup
				var skews, conflicts atomic.Int64
				for p := 0; p < pairs; p++ {
					// Reset both rows to 1 between rounds so each pair races
					// from the invariant-holding state.
					if _, err := db.Apply(map[string]*multiset.Relation{
						"x": intRel("x", 1), "y": intRel("y", 1),
					}); err != nil {
						t.Fatal(err)
					}
					wg.Add(2)
					go func() {
						defer wg.Done()
						if err := withdraw("x", "y"); err != nil && errors.Is(err, ErrConflict) {
							conflicts.Add(1)
						}
					}()
					go func() {
						defer wg.Done()
						if err := withdraw("y", "x"); err != nil && errors.Is(err, ErrConflict) {
							conflicts.Add(1)
						}
					}()
					wg.Wait()
					xr, _ := db.Relation("x")
					yr, _ := db.Relation("y")
					sum := readInt(t, xr) + readInt(t, yr)
					if sum < 0 {
						skews.Add(1)
						if serializable {
							t.Fatalf("write skew under serializable isolation: x+y = %d", sum)
						}
					}
				}
				t.Logf("%s: skews=%d conflicts=%d", name, skews.Load(), conflicts.Load())
			})
		}
	}
}

// TestConflictMatrixTransfersConserve runs concurrent transfers between two
// balance relations with conflict retries and checks conservation: the sum of
// both balances never changes, and the number of installed transitions equals
// the number of successful commits (commit order replay equivalence for
// single-relation write sets).
func TestConflictMatrixTransfersConserve(t *testing.T) {
	const goroutines = 8
	const transfersEach = 5
	for _, workers := range matrixWorkers {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			db := newIntDB(t, 100, "a", "b")
			base := db.LogicalTime()
			mgr := NewManager(db)
			var commits atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					from, to := "a", "b"
					if g%2 == 1 {
						from, to = to, from
					}
					for i := 0; i < transfersEach; i++ {
						for {
							tx := mgr.BeginTx(TxOptions{Workers: workers})
							fr, _ := tx.Relation(from)
							tr, _ := tx.Relation(to)
							fv, tv := readInt(t, fr), readInt(t, tr)
							if err := tx.Replace(from, intRel(from, fv-1)); err != nil {
								t.Error(err)
								return
							}
							if err := tx.Replace(to, intRel(to, tv+1)); err != nil {
								t.Error(err)
								return
							}
							err := tx.Commit()
							if err == nil {
								commits.Add(1)
								break
							}
							if !errors.Is(err, ErrConflict) {
								t.Errorf("unexpected commit error: %v", err)
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			ar, _ := db.Relation("a")
			br, _ := db.Relation("b")
			if sum := readInt(t, ar) + readInt(t, br); sum != 200 {
				t.Fatalf("transfers must conserve the total: a+b = %d, want 200", sum)
			}
			if got, want := db.LogicalTime()-base, uint64(commits.Load()); got != want {
				t.Fatalf("logical time advanced by %d, want one transition per commit (%d)", got, want)
			}
			if commits.Load() != goroutines*transfersEach {
				t.Fatalf("all transfers must eventually commit: %d/%d", commits.Load(), goroutines*transfersEach)
			}
		})
	}
}

// --- Key-granular cells: the matrix below exercises the delta write-set
// validation added for ISSUE 9.  Relations here are multi-row so distinct
// tuples are distinct keys.

// gridSchema is a two-column (id, v) integer relation schema.
func gridSchema(name string) schema.Relation {
	return schema.NewRelation(name,
		schema.Attribute{Name: "id", Type: value.KindInt},
		schema.Attribute{Name: "v", Type: value.KindInt})
}

// newGridDB builds one "grid" relation with rows (id, start) for id 0..rows-1.
func newGridDB(t *testing.T, rows int, start int64) *storage.Database {
	t.Helper()
	db := storage.NewDatabase()
	s := gridSchema("grid")
	if err := db.CreateRelation(s); err != nil {
		t.Fatal(err)
	}
	r := multiset.New(s)
	for id := 0; id < rows; id++ {
		r.Add(tuple.Ints(int64(id), start), 1)
	}
	if _, err := db.Apply(map[string]*multiset.Relation{"grid": r}); err != nil {
		t.Fatal(err)
	}
	return db
}

// gridValue returns row id's v in a (id, v) relation.
func gridValue(t *testing.T, r *multiset.Relation, id int64) int64 {
	t.Helper()
	var got int64
	found := false
	r.Each(func(tp tuple.Tuple, _ uint64) bool {
		if tp.At(0).Int() == id {
			got, found = tp.At(1).Int(), true
			return false
		}
		return true
	})
	if !found {
		t.Fatalf("row id=%d missing", id)
	}
	return got
}

// bumpRow returns a copy of r with row id's v incremented by delta.
func bumpRow(t *testing.T, r *multiset.Relation, id, delta int64) *multiset.Relation {
	t.Helper()
	old := gridValue(t, r, id)
	next := r.Clone()
	next.Remove(tuple.Ints(id, old), 1)
	next.Add(tuple.Ints(id, old+delta), 1)
	return next
}

// TestConflictMatrixDisjointKeyWriters runs N goroutines, each repeatedly
// updating only its own row of one shared relation.  Under key-granular
// validation their deltas touch disjoint keys, so no transaction may EVER
// conflict — a single ErrConflict fails the test — and all updates merge.
func TestConflictMatrixDisjointKeyWriters(t *testing.T) {
	const goroutines = 8
	const roundsEach = 6
	for _, workers := range matrixWorkers {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			db := newGridDB(t, goroutines, 0)
			base := db.LogicalTime()
			mgr := NewManager(db)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(id int64) {
					defer wg.Done()
					for i := 0; i < roundsEach; i++ {
						tx := mgr.BeginTx(TxOptions{Workers: workers})
						cur, ok := tx.Relation("grid")
						if !ok {
							t.Error("grid missing in snapshot")
							return
						}
						if err := tx.Replace("grid", bumpRow(t, cur, id, 1)); err != nil {
							t.Error(err)
							return
						}
						if err := tx.Commit(); err != nil {
							t.Errorf("disjoint-key writer conflicted (round %d, row %d): %v", i, id, err)
							return
						}
					}
				}(int64(g))
			}
			wg.Wait()
			final, _ := db.Relation("grid")
			for id := int64(0); id < goroutines; id++ {
				if got := gridValue(t, final, id); got != roundsEach {
					t.Fatalf("row %d = %d, want %d (lost a merged update)", id, got, roundsEach)
				}
			}
			if got, want := db.LogicalTime()-base, uint64(goroutines*roundsEach); got != want {
				t.Fatalf("logical time advanced %d, want one transition per commit (%d)", got, want)
			}
		})
	}
}

// TestConflictMatrixOverlappingKeyWriters pins the other half of the
// contract: writers whose deltas remove the same key MUST conflict.  The
// deterministic pair proves the loser aborts; the racing loop proves no
// update is ever lost while retries drain.
func TestConflictMatrixOverlappingKeyWriters(t *testing.T) {
	const goroutines = 8
	for _, workers := range matrixWorkers {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			db := newGridDB(t, 4, 0)
			mgr := NewManager(db)

			// Deterministic overlap: both transactions rewrite row 0; the
			// second committer must lose.
			tx1 := mgr.BeginTx(TxOptions{Workers: workers})
			tx2 := mgr.BeginTx(TxOptions{Workers: workers})
			r1, _ := tx1.Relation("grid")
			r2, _ := tx2.Relation("grid")
			if err := tx1.Replace("grid", bumpRow(t, r1, 0, 1)); err != nil {
				t.Fatal(err)
			}
			if err := tx2.Replace("grid", bumpRow(t, r2, 0, 2)); err != nil {
				t.Fatal(err)
			}
			if err := tx1.Commit(); err != nil {
				t.Fatalf("first committer must win: %v", err)
			}
			if err := tx2.Commit(); !errors.Is(err, ErrConflict) {
				t.Fatalf("overlapping-key second committer must abort with ErrConflict, got %v", err)
			}

			// Racing read-modify-write on the shared row: retries must drain
			// with the final value equal to the committed increments.
			var commits, conflicts atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						tx := mgr.BeginTx(TxOptions{Workers: workers})
						cur, _ := tx.Relation("grid")
						if err := tx.Replace("grid", bumpRow(t, cur, 0, 1)); err != nil {
							t.Error(err)
							return
						}
						err := tx.Commit()
						if err == nil {
							commits.Add(1)
							return
						}
						if !errors.Is(err, ErrConflict) {
							t.Errorf("unexpected commit error: %v", err)
							return
						}
						conflicts.Add(1)
					}
				}()
			}
			wg.Wait()
			final, _ := db.Relation("grid")
			if got, want := gridValue(t, final, 0), int64(1)+commits.Load(); got != want {
				t.Fatalf("lost update on the hot row: v = %d, want %d", got, want)
			}
			if got := gridValue(t, final, 1); got != 0 {
				t.Fatalf("untouched row moved: %d", got)
			}
			t.Logf("workers=%d commits=%d conflicts=%d", workers, commits.Load(), conflicts.Load())
		})
	}
}

// TestConflictMatrixCommutingAppends runs N goroutines concurrently appending
// occurrences of the SAME tuple — the multiset hot counter.  Pure additions
// are bag unions, which commute, so key-granular validation must never abort
// one (any ErrConflict fails the test) and the final multiplicity must equal
// the total number of committed appends: nothing lost, nothing double-counted.
func TestConflictMatrixCommutingAppends(t *testing.T) {
	const goroutines = 8
	const appendsEach = 5
	hot := tuple.Ints(0, 0)
	for _, workers := range matrixWorkers {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			db := newGridDB(t, 1, 0)
			mgr := NewManager(db)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < appendsEach; i++ {
						tx := mgr.BeginTx(TxOptions{Workers: workers})
						cur, _ := tx.Relation("grid")
						next := cur.Clone()
						next.Add(hot, 1)
						if err := tx.Replace("grid", next); err != nil {
							t.Error(err)
							return
						}
						if err := tx.Commit(); err != nil {
							t.Errorf("commuting append conflicted: %v", err)
							return
						}
					}
				}()
			}
			wg.Wait()
			final, _ := db.Relation("grid")
			if got, want := final.Multiplicity(hot), uint64(1+goroutines*appendsEach); got != want {
				t.Fatalf("hot tuple multiplicity = %d, want %d (appends must merge exactly once each)", got, want)
			}
		})
	}
}

// TestConflictMatrixSerializableReadersUntouchedKeys pins the serializable
// read-validation contract at key granularity: a reader of a hot relation
// aborts only when a key it actually observed changes — concurrent inserts
// of fresh keys and updates of other relations never abort it.
func TestConflictMatrixSerializableReadersUntouchedKeys(t *testing.T) {
	for _, workers := range matrixWorkers {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			db := newGridDB(t, 4, 0)
			mgr := NewManager(db)

			insertFresh := func(id int64) {
				tx := mgr.BeginTx(TxOptions{Workers: workers})
				cur, _ := tx.Relation("grid")
				next := cur.Clone()
				next.Add(tuple.Ints(id, 0), 1)
				if err := tx.Replace("grid", next); err != nil {
					t.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
			}

			// A serializable reader of grid must survive a concurrent insert
			// of a key it never observed.
			reader := mgr.BeginTx(TxOptions{Workers: workers, Serializable: true})
			if _, ok := reader.Relation("grid"); !ok {
				t.Fatal("grid missing")
			}
			insertFresh(100)
			if err := reader.Commit(); err != nil {
				t.Fatalf("serializable reader of untouched keys aborted: %v", err)
			}

			// But updating a key the reader observed must abort it.
			reader = mgr.BeginTx(TxOptions{Workers: workers, Serializable: true})
			if _, ok := reader.Relation("grid"); !ok {
				t.Fatal("grid missing")
			}
			writer := mgr.BeginTx(TxOptions{Workers: workers})
			wcur, _ := writer.Relation("grid")
			if err := writer.Replace("grid", bumpRow(t, wcur, 1, 7)); err != nil {
				t.Fatal(err)
			}
			if err := writer.Commit(); err != nil {
				t.Fatal(err)
			}
			if err := reader.Commit(); !errors.Is(err, ErrConflict) {
				t.Fatalf("serializable reader of a changed key must abort with ErrConflict, got %v", err)
			}
		})
	}
}
