package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"mra/internal/multiset"
	"mra/internal/schema"
	"mra/internal/storage"
	"mra/internal/tuple"
	"mra/internal/value"
)

// The conflict matrix: every transaction mix crossed with every parallelism
// degree, all under the race detector.  Each cell runs N concurrent
// transactions through the MVCC manager and asserts the invariants that hold
// iff isolation worked: no lost updates under direct conflicts, snapshot
// stability for readers, and conservation under concurrent transfers.

// newIntDB builds a database of single-column integer relations, one row each
// holding the given start value.
func newIntDB(t *testing.T, start int64, names ...string) *storage.Database {
	t.Helper()
	db := storage.NewDatabase()
	for _, name := range names {
		s := schema.NewRelation(name, schema.Attribute{Name: "v", Type: value.KindInt})
		if err := db.CreateRelation(s); err != nil {
			t.Fatal(err)
		}
		r := multiset.New(s)
		r.Add(tuple.Ints(start), 1)
		if _, err := db.Apply(map[string]*multiset.Relation{name: r}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// readInt returns the single integer of a one-row relation.
func readInt(t *testing.T, r *multiset.Relation) int64 {
	t.Helper()
	var got int64
	found := false
	r.Each(func(tp tuple.Tuple, n uint64) bool {
		got, found = tp.At(0).Int(), true
		return false
	})
	if !found {
		t.Fatal("relation unexpectedly empty")
	}
	return got
}

// intRel builds a one-row integer relation compatible with newIntDB's schema.
func intRel(name string, v int64) *multiset.Relation {
	s := schema.NewRelation(name, schema.Attribute{Name: "v", Type: value.KindInt})
	r := multiset.New(s)
	r.Add(tuple.Ints(v), 1)
	return r
}

// matrixWorkers is the parallelism axis of the conflict matrix.
var matrixWorkers = []int{1, 2, 4, 8}

// TestConflictMatrixDirectConflict runs N goroutines incrementing one hot
// counter.  First-committer-wins must let exactly the committed increments
// through: the final counter equals the number of successful commits, i.e. no
// lost updates, and at least one transaction must actually have conflicted.
func TestConflictMatrixDirectConflict(t *testing.T) {
	const goroutines = 16
	for _, workers := range matrixWorkers {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			db := newIntDB(t, 0, "counter")
			base := db.LogicalTime()
			mgr := NewManager(db)
			var commits, conflicts atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						tx := mgr.BeginTx(TxOptions{Workers: workers})
						cur, ok := tx.Relation("counter")
						if !ok {
							t.Error("counter relation missing in snapshot")
							return
						}
						next := intRel("counter", readInt(t, cur)+1)
						if err := tx.Replace("counter", next); err != nil {
							t.Error(err)
							return
						}
						err := tx.Commit()
						if err == nil {
							commits.Add(1)
							return
						}
						if !errors.Is(err, ErrConflict) {
							t.Errorf("unexpected commit error: %v", err)
							return
						}
						conflicts.Add(1)
					}
				}()
			}
			wg.Wait()
			final, _ := db.Relation("counter")
			if got, want := readInt(t, final), commits.Load(); got != want {
				t.Fatalf("lost update: counter = %d, committed increments = %d", got, want)
			}
			if commits.Load() != goroutines {
				t.Fatalf("every goroutine must eventually commit: %d/%d", commits.Load(), goroutines)
			}
			if got := db.LogicalTime() - base; got != uint64(goroutines) {
				t.Fatalf("logical time advanced by %d, want %d (one per committed update)", got, goroutines)
			}
			t.Logf("workers=%d commits=%d conflicts=%d", workers, commits.Load(), conflicts.Load())
		})
	}
}

// TestConflictMatrixReadersNeverBlockOrAbort runs read-only transactions
// concurrently with a stream of committing writers.  Readers must always
// commit (write-set validation has nothing to check), and both reads inside
// one transaction must observe the same snapshot value even though the live
// database moved on.
func TestConflictMatrixReadersNeverBlockOrAbort(t *testing.T) {
	const readers = 8
	const readsPerReader = 50
	for _, workers := range matrixWorkers {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			db := newIntDB(t, 0, "counter")
			mgr := NewManager(db)

			stop := make(chan struct{})
			var writerWG sync.WaitGroup
			writerWG.Add(1)
			go func() {
				defer writerWG.Done()
				for i := int64(1); ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					tx := mgr.BeginTx(TxOptions{Workers: workers})
					if err := tx.Replace("counter", intRel("counter", i)); err != nil {
						t.Error(err)
						return
					}
					if err := tx.Commit(); err != nil {
						t.Errorf("solo writer must not conflict: %v", err)
						return
					}
				}
			}()

			var wg sync.WaitGroup
			for g := 0; g < readers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < readsPerReader; i++ {
						tx := mgr.BeginTx(TxOptions{Workers: workers})
						first, ok := tx.Relation("counter")
						if !ok {
							t.Error("counter missing")
							return
						}
						v1 := readInt(t, first)
						second, _ := tx.Relation("counter")
						if v2 := readInt(t, second); v1 != v2 {
							t.Errorf("snapshot moved inside a transaction: %d then %d", v1, v2)
							return
						}
						if err := tx.Commit(); err != nil {
							t.Errorf("read-only transaction aborted: %v", err)
							return
						}
					}
				}()
			}
			wg.Wait()
			close(stop)
			writerWG.Wait()
		})
	}
}

// TestConflictMatrixWriteSkew drives the classic write-skew pair — read x
// write y against read y write x — through both isolation levels.  Plain
// snapshot isolation admits the skew (both may commit, since write sets are
// disjoint); Serializable must abort at least one of any overlapping pair,
// preserving the invariant x + y ≥ 0.
func TestConflictMatrixWriteSkew(t *testing.T) {
	const pairs = 24
	for _, workers := range matrixWorkers {
		for _, serializable := range []bool{false, true} {
			name := fmt.Sprintf("workers=%d/serializable=%v", workers, serializable)
			t.Run(name, func(t *testing.T) {
				db := newIntDB(t, 1, "x", "y")
				mgr := NewManager(db)

				// withdraw reads both rows and, when the invariant allows,
				// zeroes its own side — the paper-classic skew shape.
				withdraw := func(readRel, writeRel string) error {
					tx := mgr.BeginTx(TxOptions{Workers: workers, Serializable: serializable})
					rr, _ := tx.Relation(readRel)
					wr, _ := tx.Relation(writeRel)
					if readInt(t, rr)+readInt(t, wr) < 1 {
						tx.Abort()
						return nil
					}
					if err := tx.Replace(writeRel, intRel(writeRel, readInt(t, wr)-1)); err != nil {
						tx.Abort()
						return err
					}
					return tx.Commit()
				}

				var wg sync.WaitGroup
				var skews, conflicts atomic.Int64
				for p := 0; p < pairs; p++ {
					// Reset both rows to 1 between rounds so each pair races
					// from the invariant-holding state.
					if _, err := db.Apply(map[string]*multiset.Relation{
						"x": intRel("x", 1), "y": intRel("y", 1),
					}); err != nil {
						t.Fatal(err)
					}
					wg.Add(2)
					go func() {
						defer wg.Done()
						if err := withdraw("x", "y"); err != nil && errors.Is(err, ErrConflict) {
							conflicts.Add(1)
						}
					}()
					go func() {
						defer wg.Done()
						if err := withdraw("y", "x"); err != nil && errors.Is(err, ErrConflict) {
							conflicts.Add(1)
						}
					}()
					wg.Wait()
					xr, _ := db.Relation("x")
					yr, _ := db.Relation("y")
					sum := readInt(t, xr) + readInt(t, yr)
					if sum < 0 {
						skews.Add(1)
						if serializable {
							t.Fatalf("write skew under serializable isolation: x+y = %d", sum)
						}
					}
				}
				t.Logf("%s: skews=%d conflicts=%d", name, skews.Load(), conflicts.Load())
			})
		}
	}
}

// TestConflictMatrixTransfersConserve runs concurrent transfers between two
// balance relations with conflict retries and checks conservation: the sum of
// both balances never changes, and the number of installed transitions equals
// the number of successful commits (commit order replay equivalence for
// single-relation write sets).
func TestConflictMatrixTransfersConserve(t *testing.T) {
	const goroutines = 8
	const transfersEach = 5
	for _, workers := range matrixWorkers {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			db := newIntDB(t, 100, "a", "b")
			base := db.LogicalTime()
			mgr := NewManager(db)
			var commits atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					from, to := "a", "b"
					if g%2 == 1 {
						from, to = to, from
					}
					for i := 0; i < transfersEach; i++ {
						for {
							tx := mgr.BeginTx(TxOptions{Workers: workers})
							fr, _ := tx.Relation(from)
							tr, _ := tx.Relation(to)
							fv, tv := readInt(t, fr), readInt(t, tr)
							if err := tx.Replace(from, intRel(from, fv-1)); err != nil {
								t.Error(err)
								return
							}
							if err := tx.Replace(to, intRel(to, tv+1)); err != nil {
								t.Error(err)
								return
							}
							err := tx.Commit()
							if err == nil {
								commits.Add(1)
								break
							}
							if !errors.Is(err, ErrConflict) {
								t.Errorf("unexpected commit error: %v", err)
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			ar, _ := db.Relation("a")
			br, _ := db.Relation("b")
			if sum := readInt(t, ar) + readInt(t, br); sum != 200 {
				t.Fatalf("transfers must conserve the total: a+b = %d, want 200", sum)
			}
			if got, want := db.LogicalTime()-base, uint64(commits.Load()); got != want {
				t.Fatalf("logical time advanced by %d, want one transition per commit (%d)", got, want)
			}
			if commits.Load() != goroutines*transfersEach {
				t.Fatalf("all transfers must eventually commit: %d/%d", commits.Load(), goroutines*transfersEach)
			}
		})
	}
}
