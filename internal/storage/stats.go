package storage

import (
	"fmt"
	"strings"

	"mra/internal/stats"
)

// Analyze rebuilds optimizer statistics for the named relation from its
// current instance, stamps them with the current database version, installs
// them, and returns them.  From then on ApplyDeltas maintains the summary
// incrementally; wholesale replacements (Apply, DDL) drop it again.
func (d *Database) Analyze(name string) (*stats.Table, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := strings.ToLower(name)
	r, ok := d.relations[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchRelation, name)
	}
	t := stats.Analyze(r, d.version)
	d.stats[key] = t
	return t, nil
}

// AnalyzeAll rebuilds statistics for every relation (ANALYZE with no
// argument).
func (d *Database) AnalyzeAll() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for key, r := range d.relations {
		d.stats[key] = stats.Analyze(r, d.version)
	}
	return nil
}

// TableStats implements plan.TableStatsSource: it returns the named
// relation's statistics summary, or false when the relation was never
// analyzed (or its statistics were invalidated by a wholesale replacement).
func (d *Database) TableStats(name string) (*stats.Table, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	t, ok := d.stats[strings.ToLower(name)]
	return t, ok
}
