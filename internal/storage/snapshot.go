package storage

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"mra/internal/multiset"
	"mra/internal/schema"
)

// ErrVersionConflict is returned by ApplyValidated when a validated relation
// changed after the snapshot version the caller read it at.  The transaction
// layer maps it onto txn.ErrConflict (first-committer-wins).
var ErrVersionConflict = errors.New("storage: relation changed since snapshot")

// Snapshot is an immutable, point-in-time view of a database state D_t: one
// copy-on-write clone per relation plus the version clock the state was read
// at.  Taking a snapshot costs O(relations) pointer copies — tuple data is
// shared with the live database until either side mutates — so transactions
// can snapshot on every Begin.  A Snapshot is safe for concurrent readers.
type Snapshot struct {
	rels        map[string]*multiset.Relation
	version     uint64
	logicalTime uint64
}

// Relation returns the snapshotted instance of the named relation.  The
// returned relation is the snapshot's own COW clone: callers must treat it as
// read-only (mutating it would poison every other reader of the snapshot).
func (s *Snapshot) Relation(name string) (*multiset.Relation, bool) {
	r, ok := s.rels[strings.ToLower(name)]
	return r, ok
}

// RelationSchema implements algebra.Catalog over the snapshot.
func (s *Snapshot) RelationSchema(name string) (schema.Relation, bool) {
	r, ok := s.rels[strings.ToLower(name)]
	if !ok {
		return schema.Relation{}, false
	}
	return r.Schema(), true
}

// Names returns the names of all snapshotted relations, sorted.
func (s *Snapshot) Names() []string {
	names := make([]string, 0, len(s.rels))
	for _, r := range s.rels {
		names = append(names, r.Schema().Name())
	}
	sort.Strings(names)
	return names
}

// Version returns the database change-clock value the snapshot was taken at;
// ApplyValidated compares relation versions against it.
func (s *Snapshot) Version() uint64 { return s.version }

// LogicalTime returns the logical time t of the snapshotted state D_t.
func (s *Snapshot) LogicalTime() uint64 { return s.logicalTime }

// RelationCardinality implements plan.CardinalitySource over the snapshot.
func (s *Snapshot) RelationCardinality(name string) (uint64, bool) {
	r, ok := s.rels[strings.ToLower(name)]
	if !ok {
		return 0, false
	}
	return r.Cardinality(), true
}

// RelationDistinctCount implements plan.DistinctCardinalitySource over the
// snapshot.
func (s *Snapshot) RelationDistinctCount(name string) (int, bool) {
	r, ok := s.rels[strings.ToLower(name)]
	if !ok {
		return 0, false
	}
	return r.DistinctCount(), true
}

// Snapshot captures the current database state as an immutable point-in-time
// view.  The capture runs under the read lock only long enough to clone each
// relation (O(1) per relation, copy-on-write), so writers are blocked for
// microseconds regardless of data volume, and readers of the snapshot never
// touch the database lock again.
func (d *Database) Snapshot() *Snapshot {
	d.mu.RLock()
	defer d.mu.RUnlock()
	rels := make(map[string]*multiset.Relation, len(d.relations))
	for key, r := range d.relations {
		rels[key] = r.Clone()
	}
	return &Snapshot{rels: rels, version: d.version, logicalTime: d.logicalTime}
}

// ValidateVersions checks that none of the named relations changed after
// version since, returning an error wrapping ErrVersionConflict for the first
// one that did.  Serializable read-only transactions use it to re-validate
// their read set at commit without installing anything.
func (d *Database) ValidateVersions(since uint64, validate []string) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, name := range validate {
		key := strings.ToLower(name)
		if v, ok := d.versions[key]; ok && v > since {
			return fmt.Errorf("%w: relation %q changed at version %d after snapshot version %d",
				ErrVersionConflict, name, v, since)
		}
	}
	return nil
}

// ApplyValidated is Apply with first-committer-wins validation: before
// installing, every relation named in validate is checked against the change
// clock — if it changed after version since, nothing is installed and the
// error wraps ErrVersionConflict, naming the relation.  Validation and
// installation run under one lock acquisition, so the check-then-install is
// atomic with respect to concurrent committers.
func (d *Database) ApplyValidated(since uint64, validate []string, changes map[string]*multiset.Relation) (Transition, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, name := range validate {
		key := strings.ToLower(name)
		if v, ok := d.versions[key]; ok && v > since {
			return Transition{}, fmt.Errorf("%w: relation %q changed at version %d after snapshot version %d",
				ErrVersionConflict, name, v, since)
		}
	}
	return d.applyLocked(changes)
}
