package storage

import (
	"errors"
	"sort"
	"strings"
	"sync/atomic"

	"mra/internal/multiset"
	"mra/internal/schema"
	"mra/internal/stats"
)

// ErrVersionConflict is returned by ApplyDeltas and ValidateReads when a
// validated key (or, for wholesale replacements, a whole relation) changed
// after the snapshot version the caller read it at.  The transaction layer
// maps it onto txn.ErrConflict (first-committer-wins).
var ErrVersionConflict = errors.New("storage: relation changed since snapshot")

// Snapshot is an immutable, point-in-time view of a database state D_t: one
// copy-on-write clone per relation plus the version clock the state was read
// at.  Taking a snapshot costs O(relations) pointer copies — tuple data is
// shared with the live database until either side mutates — so transactions
// can snapshot on every Begin.  A Snapshot is safe for concurrent readers.
//
// Every snapshot is registered live with its database until Release is
// called: the recent-writer key logs are pruned only below the oldest live
// snapshot, so a transaction holding one can always validate its deltas key
// by key.  Callers that let a snapshot leak unreleased merely keep its
// refcount pinned; validation then degrades gracefully once the hard cap
// forces eviction.
type Snapshot struct {
	db          *Database
	rels        map[string]*multiset.Relation
	stats       map[string]*stats.Table
	version     uint64
	logicalTime uint64
	released    atomic.Bool
}

// Release marks the snapshot no longer live, allowing key-log entries at or
// below its version to be pruned.  It is idempotent and safe to call
// concurrently; using the snapshot's relation instances after Release is
// still safe (they are immutable COW clones) — only conflict validation
// against its version loses key granularity.
func (s *Snapshot) Release() {
	if s == nil || s.db == nil || s.released.Swap(true) {
		return
	}
	s.db.snapMu.Lock()
	defer s.db.snapMu.Unlock()
	if n := s.db.liveSnaps[s.version]; n <= 1 {
		delete(s.db.liveSnaps, s.version)
	} else {
		s.db.liveSnaps[s.version] = n - 1
	}
}

// Relation returns the snapshotted instance of the named relation.  The
// returned relation is the snapshot's own COW clone: callers must treat it as
// read-only (mutating it would poison every other reader of the snapshot).
func (s *Snapshot) Relation(name string) (*multiset.Relation, bool) {
	r, ok := s.rels[strings.ToLower(name)]
	return r, ok
}

// RelationSchema implements algebra.Catalog over the snapshot.
func (s *Snapshot) RelationSchema(name string) (schema.Relation, bool) {
	r, ok := s.rels[strings.ToLower(name)]
	if !ok {
		return schema.Relation{}, false
	}
	return r.Schema(), true
}

// Names returns the names of all snapshotted relations, sorted.
func (s *Snapshot) Names() []string {
	names := make([]string, 0, len(s.rels))
	for _, r := range s.rels {
		names = append(names, r.Schema().Name())
	}
	sort.Strings(names)
	return names
}

// Version returns the database change-clock value the snapshot was taken at;
// ApplyDeltas validates key stamps against it.
func (s *Snapshot) Version() uint64 { return s.version }

// LogicalTime returns the logical time t of the snapshotted state D_t.
func (s *Snapshot) LogicalTime() uint64 { return s.logicalTime }

// RelationCardinality implements plan.CardinalitySource over the snapshot.
func (s *Snapshot) RelationCardinality(name string) (uint64, bool) {
	r, ok := s.rels[strings.ToLower(name)]
	if !ok {
		return 0, false
	}
	return r.Cardinality(), true
}

// RelationDistinctCount implements plan.DistinctCardinalitySource over the
// snapshot.
func (s *Snapshot) RelationDistinctCount(name string) (int, bool) {
	r, ok := s.rels[strings.ToLower(name)]
	if !ok {
		return 0, false
	}
	return r.DistinctCount(), true
}

// TableStats implements plan.TableStatsSource over the snapshot: transactions
// plan against the statistics of the version they read, not whatever the live
// database has moved on to.
func (s *Snapshot) TableStats(name string) (*stats.Table, bool) {
	t, ok := s.stats[strings.ToLower(name)]
	return t, ok
}

// Snapshot captures the current database state as an immutable point-in-time
// view.  The capture runs under the read lock only long enough to clone each
// relation (O(1) per relation, copy-on-write), so writers are blocked for
// microseconds regardless of data volume, and readers of the snapshot never
// touch the database lock again.
func (d *Database) Snapshot() *Snapshot {
	d.mu.RLock()
	defer d.mu.RUnlock()
	rels := make(map[string]*multiset.Relation, len(d.relations))
	for key, r := range d.relations {
		rels[key] = r.Clone()
	}
	// Statistics tables are immutable (ApplyDeltas replaces, never mutates),
	// so capturing the pointers gives the snapshot a consistent stats view of
	// its own version for free.
	var st map[string]*stats.Table
	if len(d.stats) > 0 {
		st = make(map[string]*stats.Table, len(d.stats))
		for key, t := range d.stats {
			st[key] = t
		}
	}
	// Register the snapshot live while still holding the read lock, so no
	// committer can prune the key logs past this version before the snapshot
	// becomes visible.  Lock order d.mu → snapMu matches snapshotFloor.
	d.snapMu.Lock()
	d.liveSnaps[d.version]++
	d.snapMu.Unlock()
	return &Snapshot{db: d, rels: rels, stats: st, version: d.version, logicalTime: d.logicalTime}
}

