// Package storage implements the in-memory multi-set relational database
// engine: named relation instances, database states with logical time, and
// single-step database transitions (Definitions 2.5 and 2.6 of Grefen & de By,
// ICDE 1994).
//
// The engine plays the role PRISMA/DB plays in the paper: a concrete store the
// extended relational algebra manipulates.  It is deliberately main-memory and
// single-node; transactions (package txn) provide atomicity and isolation on
// top of the copy-on-write snapshots exposed here.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"mra/internal/multiset"
	"mra/internal/schema"
	"mra/internal/stats"
)

// Common storage errors.
var (
	// ErrNoSuchRelation is returned when a named relation does not exist.
	ErrNoSuchRelation = errors.New("storage: no such relation")
	// ErrRelationExists is returned when creating a relation that already exists.
	ErrRelationExists = errors.New("storage: relation already exists")
	// ErrSchemaMismatch is returned when installing an instance whose schema is
	// incompatible with the declared relation schema.
	ErrSchemaMismatch = errors.New("storage: schema mismatch")
)

// Transition records a single-step database transition (D_t1, D_t2)
// (Definition 2.6): the logical times of the two states and the names of the
// relations that changed between them.
type Transition struct {
	// From and To are the logical times t1 < t2 of the two database states.
	From, To uint64
	// Changed lists the names of relations replaced by the transition.
	Changed []string
}

// String renders the transition as "t1 -> t2 [r1 r2 ...]".
func (t Transition) String() string {
	return fmt.Sprintf("%d -> %d %v", t.From, t.To, t.Changed)
}

// Database is an in-memory database instance: a database schema plus one
// relation instance per relation schema, stamped with a logical time.
// All methods are safe for concurrent use.
type Database struct {
	mu          sync.RWMutex
	schema      *schema.Database
	relations   map[string]*multiset.Relation
	logicalTime uint64
	history     []Transition
	// version is the database change clock: it advances on every committed
	// Apply/ApplyDeltas and on every DDL operation, and versions records, per
	// relation, the clock value of its last change.  Snapshots capture the
	// clock and commit validation compares key stamps against it.
	version  uint64
	versions map[string]uint64
	// keylogs holds each relation's recent-writer key log (tuple hash →
	// keyStamp) for key-granular conflict validation, and wholesale records
	// the clock value of each relation's last full replacement (Apply, DDL) —
	// changes no key log can describe, so they conflict with every concurrent
	// transaction of the relation.
	keylogs   map[string]*keyLog
	wholesale map[string]uint64
	// stats holds the per-relation optimizer statistics built by Analyze and
	// maintained incrementally (copy-on-update) by ApplyDeltas, so snapshots
	// can capture the map's *stats.Table pointers without locks.  Wholesale
	// replacements (Apply, DDL) invalidate a relation's entry: no delta
	// stream describes them.
	stats map[string]*stats.Table
	// snapMu guards liveSnaps, the refcounts of live (unreleased) snapshots
	// by version: key logs are only pruned below the oldest live snapshot so
	// an in-flight transaction can always validate its deltas key by key.
	// Lock order is d.mu before snapMu; Release takes snapMu alone.
	snapMu    sync.Mutex
	liveSnaps map[uint64]int
}

// NewDatabase returns an empty database (no relations) at logical time 0.
func NewDatabase() *Database {
	s, _ := schema.NewDatabase()
	return &Database{
		schema:    s,
		relations: make(map[string]*multiset.Relation),
		versions:  make(map[string]uint64),
		keylogs:   make(map[string]*keyLog),
		wholesale: make(map[string]uint64),
		stats:     make(map[string]*stats.Table),
		liveSnaps: make(map[uint64]int),
	}
}

// CreateRelation declares a new, empty relation with the given schema.  The
// schema must carry a relation name.
func (d *Database) CreateRelation(rel schema.Relation) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := strings.ToLower(rel.Name())
	if key == "" {
		return fmt.Errorf("%w: relation schema must be named", ErrSchemaMismatch)
	}
	if _, exists := d.relations[key]; exists {
		return fmt.Errorf("%w: %q", ErrRelationExists, rel.Name())
	}
	if err := d.schema.Add(rel); err != nil {
		return err
	}
	d.relations[key] = multiset.New(rel)
	d.version++
	d.versions[key] = d.version
	d.wholesale[key] = d.version
	delete(d.keylogs, key)
	delete(d.stats, key)
	return nil
}

// DropRelation removes a relation and its instance.
func (d *Database) DropRelation(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := strings.ToLower(name)
	if _, exists := d.relations[key]; !exists {
		return fmt.Errorf("%w: %q", ErrNoSuchRelation, name)
	}
	delete(d.relations, key)
	d.schema.Remove(name)
	// Stamp the name so a transaction that snapshotted the dropped relation
	// conflicts instead of resurrecting it over a later re-creation.
	d.version++
	d.versions[key] = d.version
	d.wholesale[key] = d.version
	delete(d.keylogs, key)
	delete(d.stats, key)
	return nil
}

// Relation returns a snapshot (clone) of the named relation instance, so
// callers can read it without holding the database lock and without observing
// later writes.
func (d *Database) Relation(name string) (*multiset.Relation, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	r, ok := d.relations[strings.ToLower(name)]
	if !ok {
		return nil, false
	}
	return r.Clone(), true
}

// RelationSchema implements algebra.Catalog.
func (d *Database) RelationSchema(name string) (schema.Relation, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	r, ok := d.relations[strings.ToLower(name)]
	if !ok {
		return schema.Relation{}, false
	}
	return r.Schema(), true
}

// Names returns the names of all relations, sorted.
func (d *Database) Names() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	names := make([]string, 0, len(d.relations))
	for _, r := range d.relations {
		names = append(names, r.Schema().Name())
	}
	sort.Strings(names)
	return names
}

// LogicalTime returns the database's current logical time t.
func (d *Database) LogicalTime() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.logicalTime
}

// History returns the recorded single-step transitions, oldest first.
func (d *Database) History() []Transition {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]Transition, len(d.history))
	copy(out, d.history)
	return out
}

// RelationCardinality implements the planner's cardinality source
// (plan.CardinalitySource): the cost model ranks physical plans on the real
// table sizes of this database.
func (d *Database) RelationCardinality(name string) (uint64, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	r, ok := d.relations[strings.ToLower(name)]
	if !ok {
		return 0, false
	}
	return r.Cardinality(), true
}

// RelationDistinctCount implements plan.DistinctCardinalitySource: the
// planner sizes hash tables by distinct tuples rather than occurrences.
func (d *Database) RelationDistinctCount(name string) (int, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	r, ok := d.relations[strings.ToLower(name)]
	if !ok {
		return 0, false
	}
	return r.DistinctCount(), true
}

// Cardinality returns the total tuple count of the named relation (0 if the
// relation does not exist).
func (d *Database) Cardinality(name string) uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	r, ok := d.relations[strings.ToLower(name)]
	if !ok {
		return 0
	}
	return r.Cardinality()
}

// Apply atomically installs new instances for the named relations and advances
// the logical time by one, recording the transition.  Every target relation
// must exist and every instance must be union-compatible with the declared
// schema; on any error nothing is installed (the database state is unchanged).
// It returns the recorded transition.
func (d *Database) Apply(changes map[string]*multiset.Relation) (Transition, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.applyLocked(changes)
}

// applyLocked installs new relation instances under an already-held write
// lock; see Apply for the semantics.
func (d *Database) applyLocked(changes map[string]*multiset.Relation) (Transition, error) {
	// Validate first so the installation below cannot fail halfway.
	keys := make([]string, 0, len(changes))
	for name, inst := range changes {
		key := strings.ToLower(name)
		cur, ok := d.relations[key]
		if !ok {
			return Transition{}, fmt.Errorf("%w: %q", ErrNoSuchRelation, name)
		}
		if !cur.Schema().Compatible(inst.Schema()) {
			return Transition{}, fmt.Errorf("%w: relation %q expects %s, got %s",
				ErrSchemaMismatch, name, cur.Schema(), inst.Schema())
		}
		keys = append(keys, key)
	}
	sort.Strings(keys)

	changed := make([]string, 0, len(keys))
	for _, key := range keys {
		declared := d.relations[key].Schema()
		var inst *multiset.Relation
		for name, candidate := range changes {
			if strings.ToLower(name) == key {
				inst = candidate
				break
			}
		}
		// Re-type the instance with the declared schema so attribute names and
		// the relation name survive statement-level rebuilds.
		d.relations[key] = inst.Clone().WithSchema(declared)
		changed = append(changed, declared.Name())
	}
	tr := Transition{From: d.logicalTime, To: d.logicalTime + 1, Changed: changed}
	d.logicalTime++
	d.version++
	for _, key := range keys {
		d.versions[key] = d.version
		// A full replacement invalidates the per-key history: stamp it
		// wholesale and drop the log so key-granular validators conflict.
		// Statistics go the same way — no delta stream describes the change.
		d.wholesale[key] = d.version
		delete(d.keylogs, key)
		delete(d.stats, key)
	}
	d.history = append(d.history, tr)
	return tr, nil
}
