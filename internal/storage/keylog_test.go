package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"mra/internal/multiset"
	"mra/internal/schema"
	"mra/internal/tuple"
	"mra/internal/value"
)

// newKeyLogDB builds a database with one (k, v) relation named "r" holding
// rows (0..rows-1, 0).
func newKeyLogDB(t *testing.T, rows int) *Database {
	t.Helper()
	db := NewDatabase()
	s := schema.NewRelation("r",
		schema.Attribute{Name: "k", Type: value.KindInt},
		schema.Attribute{Name: "v", Type: value.KindInt})
	if err := db.CreateRelation(s); err != nil {
		t.Fatal(err)
	}
	seed := multiset.New(s)
	for k := 0; k < rows; k++ {
		seed.Add(tuple.Ints(int64(k), 0), 1)
	}
	if _, err := db.Apply(map[string]*multiset.Relation{"r": seed}); err != nil {
		t.Fatal(err)
	}
	return db
}

// deltaFor builds the delta replacing row (k, old) with (k, old+1).
func deltaFor(db *Database, k, old int64) Delta {
	s, _ := db.RelationSchema("r")
	add, remove := multiset.New(s), multiset.New(s)
	remove.Add(tuple.Ints(k, old), 1)
	add.Add(tuple.Ints(k, old+1), 1)
	return Delta{Add: add, Remove: remove}
}

func TestSnapshotReleaseIdempotent(t *testing.T) {
	db := newKeyLogDB(t, 2)
	s1 := db.Snapshot()
	s2 := db.Snapshot()
	if len(db.liveSnaps) != 1 || db.liveSnaps[s1.Version()] != 2 {
		t.Fatalf("two snapshots at one version must refcount: %v", db.liveSnaps)
	}
	s1.Release()
	s1.Release() // idempotent: must not decrement twice
	if db.liveSnaps[s2.Version()] != 1 {
		t.Fatalf("double release decremented twice: %v", db.liveSnaps)
	}
	s2.Release()
	if len(db.liveSnaps) != 0 {
		t.Fatalf("all released, refcounts must be empty: %v", db.liveSnaps)
	}
	var nilSnap *Snapshot
	nilSnap.Release() // must not panic
}

// TestKeyLogPruneFallsBackConservatively pins the degradation contract: once
// a snapshot's version falls below the pruned floor, validation against it
// must degrade to the relation-granular check — conflicting whenever the
// relation changed at all — rather than consult a log with discarded history.
func TestKeyLogPruneFallsBackConservatively(t *testing.T) {
	db := newKeyLogDB(t, 4)
	old := db.Snapshot()
	// Advance the relation past the old snapshot, on a key the old snapshot's
	// hypothetical delta will NOT touch.
	tip := db.Snapshot()
	if _, err := db.ApplyDeltas(tip.Version(), map[string]Delta{"r": deltaFor(db, 0, 0)}, nil); err != nil {
		t.Fatal(err)
	}
	tip.Release()
	// While old is live, pruning must not discard the entry it validates
	// against: a disjoint-key delta from old still commits.
	db.PruneKeyLogs()
	if _, err := db.ApplyDeltas(old.Version(), map[string]Delta{"r": deltaFor(db, 1, 0)}, nil); err != nil {
		t.Fatalf("disjoint-key delta from a live snapshot must commit: %v", err)
	}
	// Take a fresh snapshot from the same horizon, release old, prune: the
	// floor passes old's version and its key history is gone.
	stale := old.Version()
	old.Release()
	db.PruneKeyLogs()
	if _, pruned := db.KeyLogStats("r"); pruned <= stale {
		t.Fatalf("pruned floor %d must pass the released snapshot version %d", pruned, stale)
	}
	// A validator still holding the stale version must now conflict even on
	// an untouched key — conservative, never wrong.
	if _, err := db.ApplyDeltas(stale, map[string]Delta{"r": deltaFor(db, 3, 0)}, nil); !errors.Is(err, ErrVersionConflict) {
		t.Fatalf("below-floor validation must degrade to relation-granular conflict, got %v", err)
	}
}

// TestKeyLogPruningNeverDropsLiveEntries is the snapshot-lifecycle property
// test: a random interleaving of snapshot captures, key-granular commits,
// snapshot releases (in injected random orders, not FIFO), and prune calls,
// checked against a full-history oracle after every step.  The invariant:
// for every still-live snapshot at or above the pruned floor, the key log
// still contains every key touched after that snapshot's version — i.e.
// pruning never discards an entry a live transaction could still need to
// validate against.
func TestKeyLogPruningNeverDropsLiveEntries(t *testing.T) {
	const rows = 8
	const steps = 400
	for trial := int64(0); trial < 5; trial++ {
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(trial))
			db := newKeyLogDB(t, rows)
			vals := make([]int64, rows) // current v per key, to build valid deltas

			type oracleEntry struct {
				hash    uint64
				version uint64
			}
			var touched []oracleEntry // full history, never pruned
			var live []*Snapshot

			check := func(step int) {
				entries, pruned := db.KeyLogStats("r")
				_ = entries
				for _, s := range live {
					if s.Version() < pruned {
						continue // below the floor: conservative fallback covers it
					}
					for _, e := range touched {
						if e.version <= s.Version() {
							continue
						}
						st, ok := db.keylogs["r"].keys[e.hash]
						if !ok {
							t.Fatalf("step %d: key %d touched at v%d pruned while snapshot v%d (>= floor %d) is live",
								step, e.hash, e.version, s.Version(), pruned)
						}
						if st.version <= s.Version() {
							t.Fatalf("step %d: key %d stamp v%d regressed below touch v%d with snapshot v%d live",
								step, e.hash, st.version, e.version, s.Version())
						}
					}
				}
			}

			for step := 0; step < steps; step++ {
				switch op := rng.Intn(10); {
				case op < 3: // capture a snapshot
					live = append(live, db.Snapshot())
				case op < 4 && len(live) > 0: // release a RANDOM live snapshot
					i := rng.Intn(len(live))
					live[i].Release()
					live = append(live[:i], live[i+1:]...)
				case op < 5: // explicit prune
					db.PruneKeyLogs()
				default: // commit a delta on a random key from the current tip
					k := int64(rng.Intn(rows))
					since := db.Snapshot()
					d := deltaFor(db, k, vals[k])
					if _, err := db.ApplyDeltas(since.Version(), map[string]Delta{"r": d}, nil); err != nil {
						t.Fatalf("step %d: tip-snapshot delta must commit: %v", step, err)
					}
					since.Release()
					vals[k]++
					db.mu.RLock()
					v := db.versions["r"]
					db.mu.RUnlock()
					old := tuple.Ints(k, vals[k]-1)
					cur := tuple.Ints(k, vals[k])
					touched = append(touched,
						oracleEntry{hash: old.Hash(), version: v},
						oracleEntry{hash: cur.Hash(), version: v})
				}
				check(step)
			}
			for _, s := range live {
				s.Release()
			}
		})
	}
}

// TestKeyLogHardCapEviction drives a synthetic key log past the hard cap and
// checks that eviction raises the pruned floor to cover everything discarded:
// no entry may vanish while the floor still claims the log covers its era.
func TestKeyLogHardCapEviction(t *testing.T) {
	l := &keyLog{keys: make(map[uint64]keyStamp)}
	n := keyLogMaxEntries + 100
	for i := 0; i < n; i++ {
		l.keys[uint64(i)] = keyStamp{version: uint64(i + 1)}
	}
	l.prune(0) // floor prunes nothing; the hard cap must engage
	if len(l.keys) > keyLogMaxEntries {
		t.Fatalf("hard cap not enforced: %d entries", len(l.keys))
	}
	for h, st := range l.keys {
		if st.version <= l.pruned {
			t.Fatalf("surviving key %d at v%d is at or below the floor %d", h, st.version, l.pruned)
		}
	}
	// Every key whose version exceeds the floor must have survived.
	for i := 0; i < n; i++ {
		if v := uint64(i + 1); v > l.pruned {
			if _, ok := l.keys[uint64(i)]; !ok {
				t.Fatalf("key %d at v%d above the floor %d was evicted", i, v, l.pruned)
			}
		}
	}
}

// TestWholesaleReplacementConflictsAllKeys pins that Apply/DDL stamp the
// relation wholesale: any in-flight key-granular delta from before the
// replacement conflicts, regardless of which keys it touches.
func TestWholesaleReplacementConflictsAllKeys(t *testing.T) {
	db := newKeyLogDB(t, 4)
	snap := db.Snapshot()
	defer snap.Release()
	s, _ := db.RelationSchema("r")
	fresh := multiset.New(s)
	fresh.Add(tuple.Ints(99, 99), 1)
	if _, err := db.Apply(map[string]*multiset.Relation{"r": fresh}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ApplyDeltas(snap.Version(), map[string]Delta{"r": deltaFor(db, 0, 0)}, nil); !errors.Is(err, ErrVersionConflict) {
		t.Fatalf("delta across a wholesale replacement must conflict, got %v", err)
	}
	if err := db.ValidateReads(snap.Version(), map[string]*multiset.Relation{"r": fresh}); !errors.Is(err, ErrVersionConflict) {
		t.Fatalf("read validation across a wholesale replacement must conflict, got %v", err)
	}
}
