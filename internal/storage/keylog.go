package storage

import (
	"fmt"
	"sort"
	"strings"

	"mra/internal/multiset"
	"mra/internal/tuple"
)

// Delta is one relation's mutation as a pair of Add/Remove multisets keyed by
// tuple hash (the shape multiset.Diff produces): committing it removes every
// occurrence of Remove from the live instance (monus) and adds every
// occurrence of Add.  Deltas over disjoint keys commute — the paper's bag
// semantics makes multiset union associative and commutative — which is what
// lets ApplyDeltas merge-install concurrent writers instead of aborting them.
type Delta struct {
	// Add holds the occurrences the transaction added beyond its snapshot.
	Add *multiset.Relation
	// Remove holds the occurrences of the snapshot the transaction removed.
	Remove *multiset.Relation
}

// Empty reports whether the delta changes nothing.
func (d Delta) Empty() bool {
	return (d.Add == nil || d.Add.IsEmpty()) && (d.Remove == nil || d.Remove.IsEmpty())
}

// Key-log sizing: a relation's log is floor-pruned once it crosses
// keyLogPruneThreshold entries, and hard-capped at keyLogMaxEntries by
// evicting its older half (raising the pruned floor, so validation against
// evicted history falls back to the conservative relation-version check).
const (
	keyLogPruneThreshold = 4096
	keyLogMaxEntries     = 1 << 16
)

// keyStamp records when a tuple key last changed.  version is the change
// clock of the last committed delta touching the key at all; removed is the
// clock of the last delta that removed occurrences of it.  The distinction is
// what makes pure additions commute: an add-only delta conflicts only with a
// later removal of its key, never with other adds (bag union is commutative),
// while a removal conflicts with any later touch.
type keyStamp struct {
	version uint64
	removed uint64
}

// keyLog is one relation's recent-writer log: tuple hash → stamp of the last
// committed change.  Entries at or below pruned may have been discarded
// (they predate every live snapshot, or fell to the hard cap); a validator
// whose snapshot is older than pruned cannot trust the log and falls back to
// the relation-granular version check.
type keyLog struct {
	keys   map[uint64]keyStamp
	pruned uint64
}

// prune discards entries at or below floor — versions no live snapshot can
// conflict with — and enforces the hard cap by evicting the older half of an
// oversized log, raising pruned so affected validators degrade to the
// conservative relation-version check instead of missing a conflict.
func (l *keyLog) prune(floor uint64) {
	for h, st := range l.keys {
		if st.version <= floor {
			delete(l.keys, h)
		}
	}
	if floor > l.pruned {
		l.pruned = floor
	}
	if len(l.keys) <= keyLogMaxEntries {
		return
	}
	versions := make([]uint64, 0, len(l.keys))
	for _, st := range l.keys {
		versions = append(versions, st.version)
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i] < versions[j] })
	cut := versions[len(versions)/2]
	for h, st := range l.keys {
		if st.version <= cut {
			delete(l.keys, h)
		}
	}
	if cut > l.pruned {
		l.pruned = cut
	}
}

// snapshotFloor returns the change-clock version below which no live snapshot
// exists: the oldest registered snapshot's version, or the current version
// when none is live.  Key-log entries at or below the floor can never be the
// deciding conflict for any transaction still able to commit.
func (d *Database) snapshotFloor() uint64 {
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	floor := d.version
	for v := range d.liveSnaps {
		if v < floor {
			floor = v
		}
	}
	return floor
}

// PruneKeyLogs floor-prunes every relation's recent-writer key log against
// the oldest live snapshot.  Pruning also runs automatically when a log
// crosses its size threshold during commit; the explicit hook exists for
// tests and long-lived processes that want to reclaim log memory eagerly.
func (d *Database) PruneKeyLogs() {
	d.mu.Lock()
	defer d.mu.Unlock()
	floor := d.snapshotFloor()
	for _, log := range d.keylogs {
		log.prune(floor)
	}
}

// KeyLogStats reports the named relation's key-log size and pruned floor
// (zeros when the relation has no log).  It exists for tests asserting the
// pruning lifecycle.
func (d *Database) KeyLogStats(name string) (entries int, pruned uint64) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	log, ok := d.keylogs[strings.ToLower(name)]
	if !ok {
		return 0, 0
	}
	return len(log.keys), log.pruned
}

// validateDeltaLocked checks one relation's delta write set against the
// recent-writer state under the held database lock.  A wholesale replacement
// (Apply, DDL) after since conflicts unconditionally; otherwise removed keys
// conflict with any later touch, and added keys only with a later removal —
// concurrent additions of the same key are commuting bag unions and merge.
func (d *Database) validateDeltaLocked(since uint64, name string, delta Delta) error {
	key := strings.ToLower(name)
	if v := d.wholesale[key]; v > since {
		return fmt.Errorf("%w: relation %q replaced wholesale at version %d after snapshot version %d",
			ErrVersionConflict, name, v, since)
	}
	log, ok := d.keylogs[key]
	if !ok {
		return nil
	}
	if since < log.pruned {
		// The log no longer covers this snapshot's horizon: degrade to the
		// conservative relation-granular check rather than miss a conflict.
		if v := d.versions[key]; v > since {
			return fmt.Errorf("%w: relation %q changed at version %d after snapshot version %d (key log pruned to %d)",
				ErrVersionConflict, name, v, since, log.pruned)
		}
		return nil
	}
	var conflict error
	if delta.Remove != nil {
		delta.Remove.EachHash(func(t tuple.Tuple, h uint64, _ uint64) bool {
			if st := log.keys[h]; st.version > since {
				conflict = fmt.Errorf("%w: relation %q key %v changed at version %d after snapshot version %d",
					ErrVersionConflict, name, t, st.version, since)
				return false
			}
			return true
		})
		if conflict != nil {
			return conflict
		}
	}
	if delta.Add != nil {
		delta.Add.EachHash(func(t tuple.Tuple, h uint64, _ uint64) bool {
			if st := log.keys[h]; st.removed > since {
				conflict = fmt.Errorf("%w: relation %q key %v removed at version %d after snapshot version %d",
					ErrVersionConflict, name, t, st.removed, since)
				return false
			}
			return true
		})
	}
	return conflict
}

// validateReadLocked checks a serializable transaction's observed key set of
// one relation under the held database lock: the commit conflicts when any
// key the snapshot instance contained was touched after since (or the
// relation was replaced wholesale).  Tuples committed under fresh keys are
// phantoms this validation deliberately does not see — see the package
// comment of txn for the isolation contract.
func (d *Database) validateReadLocked(since uint64, name string, observed *multiset.Relation) error {
	key := strings.ToLower(name)
	if v := d.wholesale[key]; v > since {
		return fmt.Errorf("%w: relation %q replaced wholesale at version %d after snapshot version %d (read set)",
			ErrVersionConflict, name, v, since)
	}
	log, ok := d.keylogs[key]
	if !ok {
		return nil
	}
	if since < log.pruned {
		if v := d.versions[key]; v > since {
			return fmt.Errorf("%w: relation %q changed at version %d after snapshot version %d (read set, key log pruned to %d)",
				ErrVersionConflict, name, v, since, log.pruned)
		}
		return nil
	}
	var conflict error
	if observed.DistinctCount() <= len(log.keys) {
		observed.EachHash(func(t tuple.Tuple, h uint64, _ uint64) bool {
			if st := log.keys[h]; st.version > since {
				conflict = fmt.Errorf("%w: relation %q key %v read at snapshot version %d changed at version %d",
					ErrVersionConflict, name, t, since, st.version)
				return false
			}
			return true
		})
	} else {
		for h, st := range log.keys {
			if st.version > since && observed.ContainsHash(h) {
				conflict = fmt.Errorf("%w: relation %q key read at snapshot version %d changed at version %d",
					ErrVersionConflict, name, since, st.version)
				break
			}
		}
	}
	return conflict
}

// ValidateReads runs key-granular read-set validation without installing
// anything: for every relation name → observed snapshot instance, it checks
// that no key the instance contained changed after version since.
// Serializable read-only transactions use it at commit.
func (d *Database) ValidateReads(since uint64, reads map[string]*multiset.Relation) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for name, observed := range reads {
		if err := d.validateReadLocked(since, name, observed); err != nil {
			return err
		}
	}
	return nil
}

// ApplyDeltas is the key-granular first-committer-wins commit: under one
// acquisition of the storage lock it validates every relation's delta write
// set against the recent-writer key log (and, when reads is non-nil, the
// serializable read sets against observed keys), then merge-installs the
// deltas onto the live instances, advances the change clock and logical
// time, stamps the touched keys, and prunes oversized logs below the oldest
// live snapshot.  Writers whose deltas touch disjoint keys — or that only
// add occurrences other writers also only add — therefore commit
// concurrently where relation-granular validation would have aborted all but
// one.  On any validation error nothing is installed and the error wraps
// ErrVersionConflict.
func (d *Database) ApplyDeltas(since uint64, writes map[string]Delta, reads map[string]*multiset.Relation) (Transition, error) {
	d.mu.Lock()
	defer d.mu.Unlock()

	keys := make([]string, 0, len(writes))
	for name, delta := range writes {
		key := strings.ToLower(name)
		cur, ok := d.relations[key]
		if !ok {
			return Transition{}, fmt.Errorf("%w: %q", ErrNoSuchRelation, name)
		}
		// Conflict-validate before the schema check: a relation dropped and
		// re-created under a new schema should read as a conflict, not as a
		// schema error.
		if err := d.validateDeltaLocked(since, name, delta); err != nil {
			return Transition{}, err
		}
		for _, side := range []*multiset.Relation{delta.Add, delta.Remove} {
			if side != nil && !side.IsEmpty() && !cur.Schema().Compatible(side.Schema()) {
				return Transition{}, fmt.Errorf("%w: relation %q expects %s, got %s",
					ErrSchemaMismatch, name, cur.Schema(), side.Schema())
			}
		}
		keys = append(keys, key)
	}
	for name, observed := range reads {
		if err := d.validateReadLocked(since, name, observed); err != nil {
			return Transition{}, err
		}
	}
	sort.Strings(keys)

	v := d.version + 1
	changed := make([]string, 0, len(keys))
	for _, key := range keys {
		var delta Delta
		for name, cand := range writes {
			if strings.ToLower(name) == key {
				delta = cand
				break
			}
		}
		if delta.Empty() {
			continue
		}
		d.relations[key].ApplyDelta(delta.Add, delta.Remove)
		if st, ok := d.stats[key]; ok {
			// Maintain statistics incrementally from the same delta stream,
			// copy-on-update: snapshots holding the old *stats.Table keep a
			// consistent view of their own version.
			d.stats[key] = st.ApplyDelta(delta.Add, delta.Remove).WithVersion(v)
		}
		log, ok := d.keylogs[key]
		if !ok {
			log = &keyLog{keys: make(map[uint64]keyStamp)}
			d.keylogs[key] = log
		}
		if delta.Remove != nil {
			delta.Remove.EachHash(func(_ tuple.Tuple, h uint64, _ uint64) bool {
				log.keys[h] = keyStamp{version: v, removed: v}
				return true
			})
		}
		if delta.Add != nil {
			delta.Add.EachHash(func(_ tuple.Tuple, h uint64, _ uint64) bool {
				st := log.keys[h]
				st.version = v
				log.keys[h] = st
				return true
			})
		}
		d.versions[key] = v
		changed = append(changed, d.relations[key].Schema().Name())
		if len(log.keys) >= keyLogPruneThreshold {
			log.prune(d.snapshotFloor())
		}
	}
	if len(changed) == 0 {
		// Every delta was empty: the transaction was effectively read-only.
		return Transition{From: d.logicalTime, To: d.logicalTime}, nil
	}
	d.version = v
	tr := Transition{From: d.logicalTime, To: d.logicalTime + 1, Changed: changed}
	d.logicalTime++
	d.history = append(d.history, tr)
	return tr, nil
}
