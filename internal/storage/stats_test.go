package storage

import (
	"math/rand"
	"testing"

	"mra/internal/multiset"
	"mra/internal/stats"
	"mra/internal/tuple"
)

// TestStatsMaintainedThroughApplyDeltas checks the statistics lifecycle
// against the storage engine's delta-install path: once a relation is
// analyzed, every committed delta updates its summary in place — exact row
// counts, sketch-accurate distinct counts — while wholesale replacement
// invalidates it.
func TestStatsMaintainedThroughApplyDeltas(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := newKeyLogDB(t, 500)
	if _, err := db.Analyze("r"); err != nil {
		t.Fatal(err)
	}
	s, _ := db.RelationSchema("r")

	live := 500 // rows currently in the relation, all with v=0 initially
	for round := 0; round < 30; round++ {
		add, remove := multiset.New(s), multiset.New(s)
		for i := 0; i < 1+rng.Intn(20); i++ {
			add.Add(tuple.Ints(int64(500+round*100+i), int64(rng.Intn(50))), uint64(1+rng.Intn(3)))
		}
		// Remove one of the seed rows while any remain.
		if live > 0 {
			remove.Add(tuple.Ints(int64(500-live), 0), 1)
			live--
		}
		snap := db.Snapshot()
		if _, err := db.ApplyDeltas(snap.Version(), map[string]Delta{"r": {Add: add, Remove: remove}}, nil); err != nil {
			t.Fatal(err)
		}
		snap.Release()
	}

	st, ok := db.TableStats("r")
	if !ok {
		t.Fatal("statistics dropped by delta installs")
	}
	r, _ := db.Relation("r")
	rebuilt := stats.Analyze(r, 0)
	if st.Rows() != rebuilt.Rows() {
		t.Errorf("incremental rows = %v, rebuilt = %v", st.Rows(), rebuilt.Rows())
	}
	if got, want := uint64(st.Rows()), r.Cardinality(); got != want {
		t.Errorf("stats rows = %d, relation cardinality = %d", got, want)
	}
	// Sketches are grow-only: the incremental NDV may exceed the rebuilt one
	// (it still counts removed values) but must cover it within sketch error.
	for c := 0; c < st.Cols(); c++ {
		inc, iok := st.NDV(c)
		reb, rok := rebuilt.NDV(c)
		if iok != rok {
			t.Fatalf("col %d: ndv known: incremental %v, rebuilt %v", c, iok, rok)
		}
		if !iok {
			continue
		}
		if inc < reb*0.95 {
			t.Errorf("col %d: incremental ndv %v under rebuilt %v", c, inc, reb)
		}
	}
	if st.Version() == 0 || st.Version() <= rebuilt.Version() {
		t.Errorf("incremental summary not stamped with install version: %d", st.Version())
	}

	// Wholesale replacement invalidates rather than corrupts.
	if _, err := db.Apply(map[string]*multiset.Relation{"r": multiset.New(s)}); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.TableStats("r"); ok {
		t.Error("statistics survived wholesale Apply")
	}
}

// TestSnapshotStatsStable checks that a snapshot keeps the statistics of its
// version even while later transactions update the live summaries.
func TestSnapshotStatsStable(t *testing.T) {
	db := newKeyLogDB(t, 100)
	if _, err := db.Analyze("r"); err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()
	defer snap.Release()
	before, ok := snap.TableStats("r")
	if !ok {
		t.Fatal("snapshot missing analyzed statistics")
	}

	s, _ := db.RelationSchema("r")
	add := multiset.New(s)
	add.Add(tuple.Ints(1000, 1), 1)
	if _, err := db.ApplyDeltas(snap.Version(), map[string]Delta{"r": {Add: add, Remove: multiset.New(s)}}, nil); err != nil {
		t.Fatal(err)
	}

	after, _ := snap.TableStats("r")
	if after != before || after.Rows() != 100 {
		t.Errorf("snapshot stats changed under a concurrent commit: %v rows", after.Rows())
	}
	liveSt, _ := db.TableStats("r")
	if liveSt.Rows() != 101 {
		t.Errorf("live stats rows = %v, want 101", liveSt.Rows())
	}
}
