package storage

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"mra/internal/multiset"
	"mra/internal/schema"
	"mra/internal/tuple"
	"mra/internal/value"
)

func intRel(name string) schema.Relation {
	return schema.NewRelation(name,
		schema.Attribute{Name: "a", Type: value.KindInt},
		schema.Attribute{Name: "b", Type: value.KindInt},
	)
}

func TestCreateDropRelation(t *testing.T) {
	db := NewDatabase()
	if err := db.CreateRelation(intRel("r")); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateRelation(intRel("r")); !errors.Is(err, ErrRelationExists) {
		t.Errorf("duplicate create = %v", err)
	}
	if err := db.CreateRelation(schema.Anonymous(schema.Attribute{Name: "x", Type: value.KindInt})); err == nil {
		t.Error("anonymous relation must be rejected")
	}
	if got := db.Names(); len(got) != 1 || got[0] != "r" {
		t.Errorf("Names = %v", got)
	}
	if _, ok := db.Relation("R"); !ok {
		t.Error("case-insensitive lookup")
	}
	if s, ok := db.RelationSchema("r"); !ok || s.Name() != "r" {
		t.Error("RelationSchema")
	}
	if _, ok := db.RelationSchema("missing"); ok {
		t.Error("missing schema must not resolve")
	}
	if err := db.DropRelation("r"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropRelation("r"); !errors.Is(err, ErrNoSuchRelation) {
		t.Errorf("double drop = %v", err)
	}
	if _, ok := db.Relation("r"); ok {
		t.Error("dropped relation must be gone")
	}
}

func TestRelationReturnsSnapshot(t *testing.T) {
	db := NewDatabase()
	if err := db.CreateRelation(intRel("r")); err != nil {
		t.Fatal(err)
	}
	snap, _ := db.Relation("r")
	snap.Add(tuple.Ints(1, 2), 5)
	if db.Cardinality("r") != 0 {
		t.Error("mutating a snapshot must not affect the stored relation")
	}
	if db.Cardinality("missing") != 0 {
		t.Error("cardinality of a missing relation is 0")
	}
}

func TestApplyTransitions(t *testing.T) {
	db := NewDatabase()
	if err := db.CreateRelation(intRel("r")); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateRelation(intRel("s")); err != nil {
		t.Fatal(err)
	}
	if db.LogicalTime() != 0 {
		t.Error("fresh database starts at t=0")
	}

	inst := multiset.FromTuples(intRel("r"), tuple.Ints(1, 2), tuple.Ints(1, 2))
	tr, err := db.Apply(map[string]*multiset.Relation{"r": inst})
	if err != nil {
		t.Fatal(err)
	}
	if tr.From != 0 || tr.To != 1 || len(tr.Changed) != 1 || tr.Changed[0] != "r" {
		t.Errorf("transition = %+v", tr)
	}
	if db.LogicalTime() != 1 {
		t.Errorf("logical time = %d", db.LogicalTime())
	}
	if db.Cardinality("r") != 2 {
		t.Errorf("installed cardinality = %d", db.Cardinality("r"))
	}
	if !strings.Contains(tr.String(), "0 -> 1") {
		t.Errorf("transition string = %q", tr.String())
	}

	// Installing a new instance must not alias the caller's relation.
	inst.Add(tuple.Ints(9, 9), 1)
	if db.Cardinality("r") != 2 {
		t.Error("Apply must deep-copy the installed instance")
	}

	// Multi-relation transition.
	tr2, err := db.Apply(map[string]*multiset.Relation{
		"r": multiset.New(intRel("r")),
		"S": multiset.FromTuples(intRel("s"), tuple.Ints(3, 4)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr2.Changed) != 2 || db.LogicalTime() != 2 {
		t.Errorf("multi-relation transition = %+v at t=%d", tr2, db.LogicalTime())
	}
	if db.Cardinality("r") != 0 || db.Cardinality("s") != 1 {
		t.Error("both relations must be replaced")
	}
	hist := db.History()
	if len(hist) != 2 || hist[0].To != 1 || hist[1].To != 2 {
		t.Errorf("history = %v", hist)
	}

	// Unknown relation: nothing installed, time unchanged.
	if _, err := db.Apply(map[string]*multiset.Relation{"missing": inst}); !errors.Is(err, ErrNoSuchRelation) {
		t.Errorf("unknown target = %v", err)
	}
	if db.LogicalTime() != 2 {
		t.Error("failed Apply must not advance the logical time")
	}
	// Schema mismatch: atomic failure even when another target is valid.
	bad := multiset.New(schema.NewRelation("x", schema.Attribute{Name: "only", Type: value.KindString}))
	before := db.Cardinality("s")
	if _, err := db.Apply(map[string]*multiset.Relation{
		"s": multiset.New(intRel("s")),
		"r": bad,
	}); !errors.Is(err, ErrSchemaMismatch) {
		t.Errorf("schema mismatch = %v", err)
	}
	if db.Cardinality("s") != before || db.LogicalTime() != 2 {
		t.Error("a failed transition must leave the database unchanged")
	}
}

func TestApplyPreservesDeclaredSchema(t *testing.T) {
	db := NewDatabase()
	if err := db.CreateRelation(intRel("r")); err != nil {
		t.Fatal(err)
	}
	// Install an instance carrying an anonymous (but compatible) schema; the
	// declared schema must win.
	anon := multiset.FromTuples(schema.Anonymous(
		schema.Attribute{Type: value.KindInt},
		schema.Attribute{Type: value.KindInt},
	), tuple.Ints(7, 8))
	if _, err := db.Apply(map[string]*multiset.Relation{"r": anon}); err != nil {
		t.Fatal(err)
	}
	got, _ := db.Relation("r")
	if got.Schema().Name() != "r" || got.Schema().Attribute(0).Name != "a" {
		t.Errorf("declared schema must be preserved, got %s", got.Schema())
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	db := NewDatabase()
	if err := db.CreateRelation(intRel("r")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				inst := multiset.FromTuples(intRel("r"), tuple.Ints(seed, int64(i)))
				if _, err := db.Apply(map[string]*multiset.Relation{"r": inst}); err != nil {
					t.Errorf("apply: %v", err)
					return
				}
			}
		}(int64(w))
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if rel, ok := db.Relation("r"); ok {
					_ = rel.Cardinality()
				}
				_ = db.LogicalTime()
				_ = db.Names()
			}
		}()
	}
	wg.Wait()
	if db.LogicalTime() != 200 {
		t.Errorf("logical time after 200 transitions = %d", db.LogicalTime())
	}
	if len(db.History()) != 200 {
		t.Errorf("history length = %d", len(db.History()))
	}
}
