package schema

import (
	"errors"
	"strings"
	"testing"

	"mra/internal/value"
)

func beerSchema() Relation {
	return NewRelation("beer",
		Attribute{Name: "name", Type: value.KindString},
		Attribute{Name: "brewery", Type: value.KindString},
		Attribute{Name: "alcperc", Type: value.KindFloat},
	)
}

func brewerySchema() Relation {
	return NewRelation("brewery",
		Attribute{Name: "name", Type: value.KindString},
		Attribute{Name: "city", Type: value.KindString},
		Attribute{Name: "country", Type: value.KindString},
	)
}

func TestAttributeString(t *testing.T) {
	a := Attribute{Name: "alcperc", Type: value.KindFloat}
	if a.String() != "alcperc float" {
		t.Errorf("got %q", a.String())
	}
	b := Attribute{Type: value.KindInt}
	if b.String() != "int" {
		t.Errorf("unnamed attribute: got %q", b.String())
	}
}

func TestRelationBasics(t *testing.T) {
	r := beerSchema()
	if r.Name() != "beer" {
		t.Errorf("Name = %q", r.Name())
	}
	if r.Arity() != 3 {
		t.Errorf("Arity = %d", r.Arity())
	}
	if r.Attribute(1).Name != "brewery" {
		t.Errorf("Attribute(1) = %v", r.Attribute(1))
	}
	if got := r.Types(); len(got) != 3 || got[2] != value.KindFloat {
		t.Errorf("Types = %v", got)
	}
	attrs := r.Attributes()
	attrs[0].Name = "mutated"
	if r.Attribute(0).Name != "name" {
		t.Error("Attributes must return a copy")
	}
	renamed := r.Rename("b2")
	if renamed.Name() != "b2" || r.Name() != "beer" {
		t.Error("Rename must not mutate the receiver")
	}
}

func TestIndexOf(t *testing.T) {
	r := beerSchema()
	if i := r.IndexOf("brewery"); i != 1 {
		t.Errorf("IndexOf(brewery) = %d", i)
	}
	if i := r.IndexOf("BREWERY"); i != 1 {
		t.Errorf("IndexOf is not case-insensitive: %d", i)
	}
	if i := r.IndexOf("beer.alcperc"); i != 2 {
		t.Errorf("qualified IndexOf = %d", i)
	}
	if i := r.IndexOf("brewery.alcperc"); i != -1 {
		t.Errorf("wrong qualifier should not resolve, got %d", i)
	}
	if i := r.IndexOf("nosuch"); i != -1 {
		t.Errorf("missing attribute should be -1, got %d", i)
	}
	amb := NewRelation("r", Attribute{Name: "x", Type: value.KindInt}, Attribute{Name: "X", Type: value.KindInt})
	if i := amb.IndexOf("x"); i != -1 {
		t.Errorf("ambiguous attribute should be -1, got %d", i)
	}
}

func TestConcatAndProject(t *testing.T) {
	joined := beerSchema().Concat(brewerySchema())
	if joined.Arity() != 6 {
		t.Fatalf("Concat arity = %d", joined.Arity())
	}
	if joined.Name() != "" {
		t.Error("Concat result must be anonymous")
	}
	if joined.Attribute(3).Name != "name" || joined.Attribute(5).Name != "country" {
		t.Errorf("Concat order wrong: %v", joined)
	}

	proj, err := joined.Project([]int{5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if proj.Arity() != 2 || proj.Attribute(0).Name != "country" || proj.Attribute(1).Name != "alcperc" {
		t.Errorf("Project result = %v", proj)
	}
	if _, err := joined.Project([]int{6}); err == nil {
		t.Error("out-of-range projection must fail")
	}
	if _, err := joined.Project([]int{-1}); err == nil {
		t.Error("negative projection must fail")
	}
}

func TestEqualAndCompatible(t *testing.T) {
	a := beerSchema()
	b := beerSchema().Rename("other")
	if !a.Equal(b) {
		t.Error("schema equality must ignore the relation name")
	}
	if !a.Compatible(b) {
		t.Error("identical schemas must be compatible")
	}
	c := Anonymous(
		Attribute{Name: "n", Type: value.KindString},
		Attribute{Name: "b", Type: value.KindString},
		Attribute{Name: "p", Type: value.KindInt},
	)
	if a.Equal(c) {
		t.Error("different names/types must not be Equal")
	}
	if !a.Compatible(c) {
		t.Error("float vs int attribute should still be union-compatible")
	}
	d := Anonymous(Attribute{Name: "x", Type: value.KindString})
	if a.Compatible(d) {
		t.Error("different arity must be incompatible")
	}
	e := Anonymous(
		Attribute{Name: "n", Type: value.KindString},
		Attribute{Name: "b", Type: value.KindBool},
		Attribute{Name: "p", Type: value.KindFloat},
	)
	if a.Compatible(e) {
		t.Error("string vs bool attribute must be incompatible")
	}
}

func TestValidate(t *testing.T) {
	ok := beerSchema()
	if err := ok.Validate(); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
	dup := NewRelation("r",
		Attribute{Name: "a", Type: value.KindInt},
		Attribute{Name: "A", Type: value.KindInt},
	)
	if err := dup.Validate(); err == nil {
		t.Error("duplicate attribute names must be rejected")
	} else if !errors.Is(err, ErrSchema) {
		t.Errorf("error must wrap ErrSchema, got %v", err)
	}
	anon := Anonymous(Attribute{Type: value.KindInt}, Attribute{Type: value.KindInt})
	if err := anon.Validate(); err != nil {
		t.Errorf("unnamed attributes may repeat: %v", err)
	}
}

func TestRelationString(t *testing.T) {
	s := beerSchema().String()
	if !strings.HasPrefix(s, "beer(") || !strings.Contains(s, "alcperc float") {
		t.Errorf("String = %q", s)
	}
	anon := Anonymous(Attribute{Name: "x", Type: value.KindInt})
	if anon.String() != "(x int)" {
		t.Errorf("anonymous String = %q", anon.String())
	}
}

func TestDatabaseSchema(t *testing.T) {
	db, err := NewDatabase(beerSchema(), brewerySchema())
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Errorf("Len = %d", db.Len())
	}
	if got := db.Names(); len(got) != 2 || got[0] != "beer" || got[1] != "brewery" {
		t.Errorf("Names = %v", got)
	}
	r, ok := db.Relation("BEER")
	if !ok || r.Name() != "beer" {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := db.Relation("missing"); ok {
		t.Error("missing relation must not resolve")
	}
	if err := db.Add(beerSchema()); err == nil {
		t.Error("duplicate relation must be rejected")
	}
	if err := db.Add(Anonymous(Attribute{Name: "x", Type: value.KindInt})); err == nil {
		t.Error("anonymous relation must be rejected")
	}
	bad := NewRelation("bad", Attribute{Name: "a", Type: value.KindInt}, Attribute{Name: "a", Type: value.KindInt})
	if err := db.Add(bad); err == nil {
		t.Error("invalid relation schema must be rejected")
	}

	clone := db.Clone()
	if !clone.Remove("beer") {
		t.Error("Remove existing relation should report true")
	}
	if clone.Remove("beer") {
		t.Error("Remove twice should report false")
	}
	if _, ok := db.Relation("beer"); !ok {
		t.Error("Clone must be independent of the original")
	}
	if clone.Len() != 1 || clone.Names()[0] != "brewery" {
		t.Errorf("clone after removal: %v", clone.Names())
	}

	if s := db.String(); !strings.Contains(s, "beer(") || !strings.Contains(s, "brewery(") {
		t.Errorf("database String = %q", s)
	}
}

func TestNewDatabaseRejectsBadRelations(t *testing.T) {
	if _, err := NewDatabase(beerSchema(), beerSchema()); err == nil {
		t.Error("duplicate relations must fail")
	}
}
