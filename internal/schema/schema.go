// Package schema implements relation schemas and database schemas of the
// multi-set relational data model (Definitions 2.2 and 2.5 of Grefen & de By,
// ICDE 1994).
//
// A relation schema consists of a relation name and an ordered list of
// attributes, each defined on an atomic domain.  The attribute order matters:
// the algebra addresses attributes positionally (%1, %2, ...) so that
// anonymous intermediate relations remain addressable.  Attribute names are
// carried alongside so the SQL and XRA front-ends can resolve names to
// positions.
package schema

import (
	"errors"
	"fmt"
	"strings"

	"mra/internal/value"
)

// ErrSchema is the sentinel wrapped by all schema validation errors.
var ErrSchema = errors.New("schema error")

// Attribute is a named, typed column of a relation schema (Definition 2.2).
type Attribute struct {
	// Name is the attribute's name.  It may be empty for computed attributes
	// of anonymous intermediate relations.
	Name string
	// Type is the attribute's atomic domain.
	Type value.Kind
}

// String renders the attribute as "name type" (or just the type if unnamed).
func (a Attribute) String() string {
	if a.Name == "" {
		return a.Type.String()
	}
	return a.Name + " " + a.Type.String()
}

// Relation is a relation schema 𝓡: a relation name plus an ordered attribute
// list (Definition 2.2).  The zero value is an empty, unnamed schema.
type Relation struct {
	name  string
	attrs []Attribute
}

// NewRelation builds a relation schema from a name and attribute list.
func NewRelation(name string, attrs ...Attribute) Relation {
	cp := make([]Attribute, len(attrs))
	copy(cp, attrs)
	return Relation{name: name, attrs: cp}
}

// Anonymous builds an unnamed schema, as produced by algebra operators for
// intermediate results.
func Anonymous(attrs ...Attribute) Relation { return NewRelation("", attrs...) }

// Name returns the relation name (empty for anonymous schemas).
func (r Relation) Name() string { return r.name }

// Rename returns a copy of the schema carrying a different relation name.
func (r Relation) Rename(name string) Relation {
	return Relation{name: name, attrs: r.attrs}
}

// Arity returns the number of attributes of the schema.
func (r Relation) Arity() int { return len(r.attrs) }

// Attribute returns the i-th attribute (0-based).
func (r Relation) Attribute(i int) Attribute { return r.attrs[i] }

// Attributes returns a copy of the attribute list.
func (r Relation) Attributes() []Attribute {
	cp := make([]Attribute, len(r.attrs))
	copy(cp, r.attrs)
	return cp
}

// Types returns the domains of all attributes, in order (dom(𝓡)).
func (r Relation) Types() []value.Kind {
	ts := make([]value.Kind, len(r.attrs))
	for i, a := range r.attrs {
		ts[i] = a.Type
	}
	return ts
}

// IndexOf resolves an attribute name to its 0-based position.  Names are
// matched case-insensitively; qualified names ("beer.brewery") match on the
// unqualified part if the qualifier equals the relation name.  It returns -1
// if the name does not occur or is ambiguous.
func (r Relation) IndexOf(name string) int {
	qualifier := ""
	if dot := strings.IndexByte(name, '.'); dot >= 0 {
		qualifier, name = name[:dot], name[dot+1:]
	}
	if qualifier != "" && !strings.EqualFold(qualifier, r.name) {
		return -1
	}
	found := -1
	for i, a := range r.attrs {
		if strings.EqualFold(a.Name, name) {
			if found >= 0 {
				return -1 // ambiguous
			}
			found = i
		}
	}
	return found
}

// Concat returns the schema 𝓔 ⊕ 𝓔′ of the Cartesian product of two schemas:
// the concatenation of their attribute lists (Definition 2.4, lifted to
// schemas).  The result is anonymous.
func (r Relation) Concat(o Relation) Relation {
	attrs := make([]Attribute, 0, len(r.attrs)+len(o.attrs))
	attrs = append(attrs, r.attrs...)
	attrs = append(attrs, o.attrs...)
	return Relation{attrs: attrs}
}

// Project returns the schema π_α(𝓔) for a positional attribute list α
// (0-based indices).  It returns an error if any index is out of range.
func (r Relation) Project(indices []int) (Relation, error) {
	attrs := make([]Attribute, 0, len(indices))
	for _, i := range indices {
		if i < 0 || i >= len(r.attrs) {
			return Relation{}, fmt.Errorf("%w: projection index %%%d out of range for arity %d", ErrSchema, i+1, len(r.attrs))
		}
		attrs = append(attrs, r.attrs[i])
	}
	return Relation{attrs: attrs}, nil
}

// Equal reports whether two schemas have identical attribute lists (names and
// types).  The relation name is not part of schema equality: two instances of
// the same shape are union-compatible regardless of how they are named.
func (r Relation) Equal(o Relation) bool {
	if len(r.attrs) != len(o.attrs) {
		return false
	}
	for i := range r.attrs {
		if r.attrs[i] != o.attrs[i] {
			return false
		}
	}
	return true
}

// Compatible reports whether two schemas are union-compatible: same arity and
// pairwise compatible domains (equal, or both numeric).  This is the check the
// union, difference and intersection operators perform (Definition 3.1).
func (r Relation) Compatible(o Relation) bool {
	if len(r.attrs) != len(o.attrs) {
		return false
	}
	for i := range r.attrs {
		a, b := r.attrs[i].Type, o.attrs[i].Type
		if a == b {
			continue
		}
		if a.Numeric() && b.Numeric() {
			continue
		}
		return false
	}
	return true
}

// Validate checks structural well-formedness: non-empty attribute names must
// be unique (case-insensitively) within the schema.
func (r Relation) Validate() error {
	seen := make(map[string]struct{}, len(r.attrs))
	for i, a := range r.attrs {
		if a.Name == "" {
			continue
		}
		key := strings.ToLower(a.Name)
		if _, dup := seen[key]; dup {
			return fmt.Errorf("%w: duplicate attribute name %q at position %d in relation %q", ErrSchema, a.Name, i+1, r.name)
		}
		seen[key] = struct{}{}
	}
	return nil
}

// String renders the schema as "name(a1 t1, a2 t2, ...)".
func (r Relation) String() string {
	var b strings.Builder
	if r.name != "" {
		b.WriteString(r.name)
	}
	b.WriteByte('(')
	for i, a := range r.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Database is a database schema 𝒟: a set of relation schemas addressed by
// name (Definition 2.5).
type Database struct {
	relations map[string]Relation
	order     []string
}

// NewDatabase builds a database schema from relation schemas.  Relation names
// must be non-empty and unique (case-insensitive).
func NewDatabase(relations ...Relation) (*Database, error) {
	d := &Database{relations: make(map[string]Relation, len(relations))}
	for _, r := range relations {
		if err := d.Add(r); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Add inserts a relation schema into the database schema.
func (d *Database) Add(r Relation) error {
	if r.name == "" {
		return fmt.Errorf("%w: database relations must be named", ErrSchema)
	}
	if err := r.Validate(); err != nil {
		return err
	}
	key := strings.ToLower(r.name)
	if _, dup := d.relations[key]; dup {
		return fmt.Errorf("%w: duplicate relation %q in database schema", ErrSchema, r.name)
	}
	if d.relations == nil {
		d.relations = make(map[string]Relation)
	}
	d.relations[key] = r
	d.order = append(d.order, key)
	return nil
}

// Remove deletes a relation schema by name.  It reports whether the relation
// existed.
func (d *Database) Remove(name string) bool {
	key := strings.ToLower(name)
	if _, ok := d.relations[key]; !ok {
		return false
	}
	delete(d.relations, key)
	for i, k := range d.order {
		if k == key {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	return true
}

// Relation looks up a relation schema by name (case-insensitive).
func (d *Database) Relation(name string) (Relation, bool) {
	r, ok := d.relations[strings.ToLower(name)]
	return r, ok
}

// Names returns the relation names in insertion order.
func (d *Database) Names() []string {
	names := make([]string, 0, len(d.order))
	for _, key := range d.order {
		names = append(names, d.relations[key].name)
	}
	return names
}

// Len returns the number of relations in the schema.
func (d *Database) Len() int { return len(d.relations) }

// Clone returns a deep copy of the database schema.
func (d *Database) Clone() *Database {
	cp := &Database{relations: make(map[string]Relation, len(d.relations))}
	for k, v := range d.relations {
		cp.relations[k] = v
	}
	cp.order = append([]string(nil), d.order...)
	return cp
}

// String renders the database schema one relation per line.
func (d *Database) String() string {
	var b strings.Builder
	for i, name := range d.Names() {
		if i > 0 {
			b.WriteByte('\n')
		}
		r, _ := d.Relation(name)
		b.WriteString(r.String())
	}
	return b.String()
}
