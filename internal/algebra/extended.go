package algebra

import (
	"fmt"
	"strings"

	"mra/internal/scalar"
	"mra/internal/schema"
	"mra/internal/value"
)

// This file defines the extended relational algebra operators of
// Definition 3.3 and 3.4: aggregate functions, the extended (arithmetic)
// projection, the unique operator δ, the groupby operator Γ, and the
// transitive-closure extension named in Section 5.

// Aggregate identifies one of the paper's multi-set aggregate functions
// (Definition 3.3).
type Aggregate uint8

// The aggregate functions of Definition 3.3.
const (
	// AggCount is CNT: Σ_x E(x), the total number of tuples counting
	// duplicates.  Its attribute parameter is a dummy, kept only for
	// syntactical uniformity.
	AggCount Aggregate = iota
	// AggSum is SUM over a numeric attribute: Σ_x E(x)·x.p.
	AggSum
	// AggAvg is AVG = SUM/CNT; a partial function, undefined on empty
	// multi-sets.
	AggAvg
	// AggMin is MIN over the tuples with E(x) > 0; partial on empty inputs.
	AggMin
	// AggMax is MAX over the tuples with E(x) > 0; partial on empty inputs.
	AggMax
)

// String returns the paper's name for the aggregate.
func (a Aggregate) String() string {
	switch a {
	case AggCount:
		return "CNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AGG(%d)", uint8(a))
	}
}

// ParseAggregate parses an aggregate function name (case-insensitive; both
// the paper's CNT and SQL's COUNT are accepted).
func ParseAggregate(s string) (Aggregate, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "CNT", "COUNT":
		return AggCount, nil
	case "SUM":
		return AggSum, nil
	case "AVG":
		return AggAvg, nil
	case "MIN":
		return AggMin, nil
	case "MAX":
		return AggMax, nil
	default:
		return AggCount, fmt.Errorf("%w: unknown aggregate function %q", ErrPlan, s)
	}
}

// ResultKind returns the domain of the aggregate applied to an attribute of
// the given domain, or an error when the combination is not typeable
// (SUM/AVG require a numeric attribute).
func (a Aggregate) ResultKind(attr value.Kind) (value.Kind, error) {
	switch a {
	case AggCount:
		return value.KindInt, nil
	case AggSum:
		if !attr.Numeric() {
			return value.KindNull, fmt.Errorf("%w: SUM requires a numeric attribute, got %s", ErrPlan, attr)
		}
		return attr, nil
	case AggAvg:
		if !attr.Numeric() {
			return value.KindNull, fmt.Errorf("%w: AVG requires a numeric attribute, got %s", ErrPlan, attr)
		}
		return value.KindFloat, nil
	case AggMin, AggMax:
		return attr, nil
	default:
		return value.KindNull, fmt.Errorf("%w: unknown aggregate %d", ErrPlan, uint8(a))
	}
}

// ExtProject is the extended projection π_α(E) of Definition 3.4: the
// attribute list α contains arbitrary arithmetic expressions over the input's
// attributes rather than plain attribute references.  The plain projection is
// the special case where every item is an attribute reference.
type ExtProject struct {
	// Items are the output expressions, in order.
	Items []scalar.Expr
	// Names optionally names the output attributes; when nil or shorter than
	// Items the missing names are left empty (anonymous computed columns).
	Names []string
	Input Expr
}

// NewExtProject returns an extended projection.
func NewExtProject(items []scalar.Expr, names []string, input Expr) ExtProject {
	ic := make([]scalar.Expr, len(items))
	copy(ic, items)
	var nc []string
	if names != nil {
		nc = make([]string, len(names))
		copy(nc, names)
	}
	return ExtProject{Items: ic, Names: nc, Input: input}
}

// Schema implements Expr.
func (p ExtProject) Schema(cat Catalog) (schema.Relation, error) {
	in, err := p.Input.Schema(cat)
	if err != nil {
		return schema.Relation{}, err
	}
	if len(p.Items) == 0 {
		return schema.Relation{}, fmt.Errorf("%w: extended projection with an empty expression list", ErrPlan)
	}
	attrs := make([]schema.Attribute, len(p.Items))
	for i, item := range p.Items {
		k, err := item.Type(in)
		if err != nil {
			return schema.Relation{}, fmt.Errorf("%w: item %d: %v", ErrPlan, i+1, err)
		}
		name := ""
		if i < len(p.Names) {
			name = p.Names[i]
		} else if a, ok := item.(scalar.Attr); ok {
			name = in.Attribute(a.Index).Name
		}
		attrs[i] = schema.Attribute{Name: name, Type: k}
	}
	out := schema.Anonymous(attrs...)
	if err := out.Validate(); err != nil {
		return schema.Relation{}, fmt.Errorf("%w: %v", ErrPlan, err)
	}
	return out, nil
}

// Children implements Expr.
func (p ExtProject) Children() []Expr { return []Expr{p.Input} }

// String implements Expr.
func (p ExtProject) String() string {
	items := make([]string, len(p.Items))
	for i, it := range p.Items {
		items[i] = it.String()
	}
	return fmt.Sprintf("xproject[%s](%s)", strings.Join(items, ","), p.Input)
}

// Unique is the duplicate-elimination operator δE of Definition 3.4:
// (δE)(x) = 1 whenever E(x) > 0, and 0 otherwise.
type Unique struct {
	Input Expr
}

// NewUnique returns δ applied to an expression.
func NewUnique(input Expr) Unique { return Unique{Input: input} }

// Schema implements Expr.
func (u Unique) Schema(cat Catalog) (schema.Relation, error) { return u.Input.Schema(cat) }

// Children implements Expr.
func (u Unique) Children() []Expr { return []Expr{u.Input} }

// String implements Expr.
func (u Unique) String() string { return fmt.Sprintf("unique(%s)", u.Input) }

// AggSpec is one aggregate application (f, p) of a groupby expression: the
// aggregate function, the 0-based position of its attribute parameter, and an
// optional output column name.
type AggSpec struct {
	// Fn is the aggregate function f of Definition 3.3.
	Fn Aggregate
	// Col is the 0-based position of the aggregated attribute p.  For CNT it
	// is a dummy parameter (any valid position), kept for syntactical
	// uniformity as in the paper.
	Col int
	// Name optionally names the aggregate output column; empty selects the
	// lower-cased aggregate function name (or stays anonymous when that would
	// collide with an earlier output column).
	Name string
}

// GroupBy is the groupby expression Γ_{α,f,p}(E) of Definition 3.4,
// generalised to a list of aggregate applications computed in one pass: it
// partitions E by equality on the (duplicate-free) grouping attribute list α
// and computes every aggregate (fᵢ, pᵢ) per group.  The result schema is
// π_α(𝓔) ⊕ ran(f₁) ⊕ … ⊕ ran(fₖ): the grouping attributes followed by one
// column per aggregate.  The paper's single-aggregate operator is the
// degenerate case len(Aggs) == 1 (NewGroupBy); the generalisation is sound
// because every aggregate is computed over the same partition of E, so the
// multi-aggregate form equals the α-join of the single-aggregate forms
// without materialising the join.  With an empty α the aggregates are
// computed over the whole input and the result is a single tuple.
type GroupBy struct {
	// GroupCols are the 0-based grouping attribute positions (α); they must
	// not repeat.
	GroupCols []int
	// Aggs are the aggregate applications, in output-column order; the list
	// must not be empty.
	Aggs  []AggSpec
	Input Expr
}

// NewGroupBy returns a single-aggregate groupby expression — the paper's
// Γ_{α,f,p}(E), the degenerate case of the multi-aggregate form.
func NewGroupBy(groupCols []int, agg Aggregate, aggCol int, input Expr) GroupBy {
	return NewGroupByMulti(groupCols, []AggSpec{{Fn: agg, Col: aggCol}}, input)
}

// NewGroupByMulti returns a groupby expression computing every aggregate of
// the list in one pass over the grouped input.
func NewGroupByMulti(groupCols []int, aggs []AggSpec, input Expr) GroupBy {
	cp := make([]int, len(groupCols))
	copy(cp, groupCols)
	ac := make([]AggSpec, len(aggs))
	copy(ac, aggs)
	return GroupBy{GroupCols: cp, Aggs: ac, Input: input}
}

// Schema implements Expr.
func (g GroupBy) Schema(cat Catalog) (schema.Relation, error) {
	in, err := g.Input.Schema(cat)
	if err != nil {
		return schema.Relation{}, err
	}
	if len(g.Aggs) == 0 {
		return schema.Relation{}, fmt.Errorf("%w: groupby without an aggregate function", ErrPlan)
	}
	seen := make(map[int]struct{}, len(g.GroupCols))
	for _, c := range g.GroupCols {
		if c < 0 || c >= in.Arity() {
			return schema.Relation{}, fmt.Errorf("%w: grouping attribute %%%d out of range for %s", ErrPlan, c+1, in)
		}
		if _, dup := seen[c]; dup {
			return schema.Relation{}, fmt.Errorf("%w: grouping attribute %%%d repeated (α must be duplicate-free)", ErrPlan, c+1)
		}
		seen[c] = struct{}{}
	}
	grouped, err := in.Project(g.GroupCols)
	if err != nil {
		return schema.Relation{}, fmt.Errorf("%w: %v", ErrPlan, err)
	}
	// Default aggregate column names fall back to anonymous when they would
	// collide with an earlier output column; explicit names collide loudly in
	// Validate below.
	used := make(map[string]struct{}, grouped.Arity()+len(g.Aggs))
	for i := 0; i < grouped.Arity(); i++ {
		if n := grouped.Attribute(i).Name; n != "" {
			used[strings.ToLower(n)] = struct{}{}
		}
	}
	aggAttrs := make([]schema.Attribute, len(g.Aggs))
	for i, sp := range g.Aggs {
		if sp.Col < 0 || sp.Col >= in.Arity() {
			return schema.Relation{}, fmt.Errorf("%w: aggregate attribute %%%d out of range for %s", ErrPlan, sp.Col+1, in)
		}
		aggKind, err := sp.Fn.ResultKind(in.Attribute(sp.Col).Type)
		if err != nil {
			return schema.Relation{}, err
		}
		name := sp.Name
		if name == "" {
			name = strings.ToLower(sp.Fn.String())
			if _, dup := used[name]; dup {
				name = ""
			}
		}
		if name != "" {
			used[strings.ToLower(name)] = struct{}{}
		}
		aggAttrs[i] = schema.Attribute{Name: name, Type: aggKind}
	}
	out := grouped.Concat(schema.Anonymous(aggAttrs...))
	if err := out.Validate(); err != nil {
		return schema.Relation{}, fmt.Errorf("%w: %v", ErrPlan, err)
	}
	return out, nil
}

// Children implements Expr.
func (g GroupBy) Children() []Expr { return []Expr{g.Input} }

// String implements Expr.
func (g GroupBy) String() string {
	cols := make([]string, len(g.GroupCols))
	for i, c := range g.GroupCols {
		cols[i] = fmt.Sprintf("%%%d", c+1)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "groupby[(%s)", strings.Join(cols, ","))
	for _, sp := range g.Aggs {
		fmt.Fprintf(&b, ",%s,%%%d", sp.Fn, sp.Col+1)
	}
	fmt.Fprintf(&b, "](%s)", g.Input)
	return b.String()
}

// TClose is the transitive-closure operator over a binary relation, the
// extension the paper's Section 5 names (citing Grefen's thesis) to show the
// algebra is open to extension.  The input must have exactly two
// union-compatible attributes; the result is the smallest transitively closed
// relation containing δE, returned duplicate-free.
type TClose struct {
	Input Expr
}

// NewTClose returns the transitive closure of an expression.
func NewTClose(input Expr) TClose { return TClose{Input: input} }

// Schema implements Expr.
func (t TClose) Schema(cat Catalog) (schema.Relation, error) {
	in, err := t.Input.Schema(cat)
	if err != nil {
		return schema.Relation{}, err
	}
	if in.Arity() != 2 {
		return schema.Relation{}, fmt.Errorf("%w: transitive closure requires a binary relation, got arity %d", ErrPlan, in.Arity())
	}
	a, b := in.Attribute(0).Type, in.Attribute(1).Type
	if a != b && !(a.Numeric() && b.Numeric()) {
		return schema.Relation{}, fmt.Errorf("%w: transitive closure requires compatible attribute domains, got %s and %s", ErrPlan, a, b)
	}
	return in, nil
}

// Children implements Expr.
func (t TClose) Children() []Expr { return []Expr{t.Input} }

// String implements Expr.
func (t TClose) String() string { return fmt.Sprintf("tclose(%s)", t.Input) }

// compatibleSchema validates that both operands share a union-compatible
// schema and returns the left operand's schema as the result schema.
func compatibleSchema(op string, left, right Expr, cat Catalog) (schema.Relation, error) {
	ls, err := left.Schema(cat)
	if err != nil {
		return schema.Relation{}, err
	}
	rs, err := right.Schema(cat)
	if err != nil {
		return schema.Relation{}, err
	}
	if !ls.Compatible(rs) {
		return schema.Relation{}, fmt.Errorf("%w: %s applied to incompatible schemas %s and %s", ErrPlan, op, ls, rs)
	}
	return ls, nil
}

// Walk visits the expression tree in pre-order, calling fn on every node.  If
// fn returns false the node's children are not visited.
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	for _, c := range e.Children() {
		Walk(c, fn)
	}
}

// Relations returns the names of all database relations referenced by the
// expression, in first-appearance order without duplicates.
func Relations(e Expr) []string {
	var names []string
	seen := make(map[string]struct{})
	Walk(e, func(n Expr) bool {
		if r, ok := n.(Rel); ok {
			key := strings.ToLower(r.Name)
			if _, dup := seen[key]; !dup {
				seen[key] = struct{}{}
				names = append(names, r.Name)
			}
		}
		return true
	})
	return names
}

// CountNodes returns the number of operator nodes in the expression tree; the
// rewrite engine and tests use it as a rough complexity measure.
func CountNodes(e Expr) int {
	n := 0
	Walk(e, func(Expr) bool { n++; return true })
	return n
}
