package algebra

import (
	"strings"
	"testing"

	"mra/internal/scalar"
	"mra/internal/schema"
	"mra/internal/value"
)

// beerCatalog returns the paper's running example catalog:
// beer(name, brewery, alcperc) and brewery(name, city, country).
func beerCatalog() MapCatalog {
	return MapCatalog{
		"beer": schema.NewRelation("beer",
			schema.Attribute{Name: "name", Type: value.KindString},
			schema.Attribute{Name: "brewery", Type: value.KindString},
			schema.Attribute{Name: "alcperc", Type: value.KindFloat},
		),
		"brewery": schema.NewRelation("brewery",
			schema.Attribute{Name: "name", Type: value.KindString},
			schema.Attribute{Name: "city", Type: value.KindString},
			schema.Attribute{Name: "country", Type: value.KindString},
		),
	}
}

func TestMapCatalog(t *testing.T) {
	cat := beerCatalog()
	if _, ok := cat.RelationSchema("beer"); !ok {
		t.Error("exact lookup failed")
	}
	if _, ok := cat.RelationSchema("BEER"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := cat.RelationSchema("wine"); ok {
		t.Error("unknown relation must not resolve")
	}
}

func TestRel(t *testing.T) {
	cat := beerCatalog()
	r := NewRel("beer")
	s, err := r.Schema(cat)
	if err != nil || s.Arity() != 3 {
		t.Fatalf("Schema = %v, %v", s, err)
	}
	if _, err := NewRel("wine").Schema(cat); err == nil {
		t.Error("unknown relation must fail")
	}
	if _, err := r.Schema(nil); err == nil {
		t.Error("nil catalog must fail")
	}
	if len(r.Children()) != 0 || r.String() != "beer" {
		t.Error("Rel children/string")
	}
	if err := Validate(r, cat); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestLiteral(t *testing.T) {
	s := schema.Anonymous(
		schema.Attribute{Name: "a", Type: value.KindInt},
		schema.Attribute{Name: "b", Type: value.KindString},
	)
	l := Literal{Rel: s, Rows: [][]value.Value{
		{value.NewInt(1), value.NewString("x")},
		{value.NewFloat(2), value.NewString("y")}, // numeric coercion allowed
		{value.Null, value.Null},                  // nulls allowed
	}}
	got, err := l.Schema(nil)
	if err != nil || got.Arity() != 2 {
		t.Fatalf("Schema = %v, %v", got, err)
	}
	if len(l.Children()) != 0 || !strings.Contains(l.String(), "3 rows") {
		t.Error("Literal children/string")
	}
	badArity := Literal{Rel: s, Rows: [][]value.Value{{value.NewInt(1)}}}
	if _, err := badArity.Schema(nil); err == nil {
		t.Error("wrong row arity must fail")
	}
	badType := Literal{Rel: s, Rows: [][]value.Value{{value.NewString("no"), value.NewString("x")}}}
	if _, err := badType.Schema(nil); err == nil {
		t.Error("wrong value domain must fail")
	}
}

func TestUnionDiffIntersectSchema(t *testing.T) {
	cat := beerCatalog()
	u := NewUnion(NewRel("beer"), NewRel("beer"))
	if _, err := u.Schema(cat); err != nil {
		t.Errorf("union of compatible relations: %v", err)
	}
	if len(u.Children()) != 2 || !strings.HasPrefix(u.String(), "union(") {
		t.Error("union children/string")
	}
	d := NewDifference(NewRel("beer"), NewRel("beer"))
	if _, err := d.Schema(cat); err != nil {
		t.Errorf("difference: %v", err)
	}
	if !strings.HasPrefix(d.String(), "diff(") || len(d.Children()) != 2 {
		t.Error("difference children/string")
	}
	i := NewIntersect(NewRel("beer"), NewRel("beer"))
	if _, err := i.Schema(cat); err != nil {
		t.Errorf("intersection: %v", err)
	}
	if !strings.HasPrefix(i.String(), "intersect(") || len(i.Children()) != 2 {
		t.Error("intersect children/string")
	}

	// beer and brewery are string,string,string vs string,string,float — the
	// third attribute is incompatible.
	if _, err := NewUnion(NewRel("beer"), NewRel("brewery")).Schema(cat); err == nil {
		t.Error("union of incompatible schemas must fail")
	}
	if _, err := NewDifference(NewRel("beer"), NewRel("brewery")).Schema(cat); err == nil {
		t.Error("difference of incompatible schemas must fail")
	}
	if _, err := NewIntersect(NewRel("beer"), NewRel("brewery")).Schema(cat); err == nil {
		t.Error("intersection of incompatible schemas must fail")
	}
	// Operand errors propagate from either side.
	if _, err := NewUnion(NewRel("wine"), NewRel("beer")).Schema(cat); err == nil {
		t.Error("left operand error must propagate")
	}
	if _, err := NewUnion(NewRel("beer"), NewRel("wine")).Schema(cat); err == nil {
		t.Error("right operand error must propagate")
	}
}

func TestProductSchema(t *testing.T) {
	cat := beerCatalog()
	p := NewProduct(NewRel("beer"), NewRel("brewery"))
	s, err := p.Schema(cat)
	if err != nil || s.Arity() != 6 {
		t.Fatalf("product schema = %v, %v", s, err)
	}
	if s.Attribute(5).Name != "country" {
		t.Error("product schema must concatenate in order")
	}
	if len(p.Children()) != 2 || !strings.HasPrefix(p.String(), "product(") {
		t.Error("product children/string")
	}
	if _, err := NewProduct(NewRel("wine"), NewRel("beer")).Schema(cat); err == nil {
		t.Error("left error propagates")
	}
	if _, err := NewProduct(NewRel("beer"), NewRel("wine")).Schema(cat); err == nil {
		t.Error("right error propagates")
	}
}

func TestSelectSchema(t *testing.T) {
	cat := beerCatalog()
	cond := scalar.NewCompare(value.CmpGt, scalar.NewAttr(2), scalar.NewConst(value.NewFloat(5)))
	s := NewSelect(cond, NewRel("beer"))
	got, err := s.Schema(cat)
	if err != nil || got.Arity() != 3 {
		t.Fatalf("select schema = %v, %v", got, err)
	}
	if len(s.Children()) != 1 || !strings.HasPrefix(s.String(), "select[") {
		t.Error("select children/string")
	}
	// Condition referencing a missing attribute fails validation.
	bad := NewSelect(scalar.NewCompare(value.CmpGt, scalar.NewAttr(7), scalar.NewConst(value.NewFloat(5))), NewRel("beer"))
	if _, err := bad.Schema(cat); err == nil {
		t.Error("out-of-range condition must fail")
	}
	// Type mismatch in the condition.
	mismatch := NewSelect(scalar.NewCompare(value.CmpEq, scalar.NewAttr(0), scalar.NewConst(value.NewInt(1))), NewRel("beer"))
	if _, err := mismatch.Schema(cat); err == nil {
		t.Error("string = int condition must fail")
	}
	// Missing condition.
	if _, err := (Select{Input: NewRel("beer")}).Schema(cat); err == nil {
		t.Error("select without condition must fail")
	}
	// Input errors propagate.
	if _, err := NewSelect(cond, NewRel("wine")).Schema(cat); err == nil {
		t.Error("input error propagates")
	}
}

func TestProjectSchema(t *testing.T) {
	cat := beerCatalog()
	p := NewProject([]int{0, 2}, NewRel("beer"))
	s, err := p.Schema(cat)
	if err != nil || s.Arity() != 2 || s.Attribute(1).Name != "alcperc" {
		t.Fatalf("project schema = %v, %v", s, err)
	}
	if !strings.Contains(p.String(), "%1,%3") {
		t.Errorf("project string = %q", p.String())
	}
	if _, err := NewProject([]int{9}, NewRel("beer")).Schema(cat); err == nil {
		t.Error("out-of-range projection must fail")
	}
	if _, err := NewProject(nil, NewRel("beer")).Schema(cat); err == nil {
		t.Error("empty projection must fail")
	}
	if _, err := NewProject([]int{0}, NewRel("wine")).Schema(cat); err == nil {
		t.Error("input error propagates")
	}
	// NewProject copies its argument.
	cols := []int{0}
	pp := NewProject(cols, NewRel("beer"))
	cols[0] = 2
	if pp.Columns[0] != 0 {
		t.Error("NewProject must copy the column list")
	}
}

func TestJoinSchema(t *testing.T) {
	cat := beerCatalog()
	// beer.brewery = brewery.name is %2 = %4 on the concatenated schema.
	j := NewJoin(scalar.Eq(1, 3), NewRel("beer"), NewRel("brewery"))
	s, err := j.Schema(cat)
	if err != nil || s.Arity() != 6 {
		t.Fatalf("join schema = %v, %v", s, err)
	}
	if len(j.Children()) != 2 || !strings.HasPrefix(j.String(), "join[") {
		t.Error("join children/string")
	}
	if _, err := NewJoin(scalar.Eq(1, 9), NewRel("beer"), NewRel("brewery")).Schema(cat); err == nil {
		t.Error("condition outside the concatenated schema must fail")
	}
	if _, err := (Join{Left: NewRel("beer"), Right: NewRel("brewery")}).Schema(cat); err == nil {
		t.Error("join without condition must fail")
	}
	if _, err := NewJoin(scalar.Eq(0, 1), NewRel("wine"), NewRel("brewery")).Schema(cat); err == nil {
		t.Error("left error propagates")
	}
	if _, err := NewJoin(scalar.Eq(0, 1), NewRel("beer"), NewRel("wine")).Schema(cat); err == nil {
		t.Error("right error propagates")
	}
}

func TestAggregateParsingAndTyping(t *testing.T) {
	for in, want := range map[string]Aggregate{
		"cnt": AggCount, "COUNT": AggCount, "Sum": AggSum, "avg": AggAvg, "MIN": AggMin, "max": AggMax,
	} {
		got, err := ParseAggregate(in)
		if err != nil || got != want {
			t.Errorf("ParseAggregate(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseAggregate("median"); err == nil {
		t.Error("unknown aggregate must fail")
	}
	if AggCount.String() != "CNT" || AggSum.String() != "SUM" || AggAvg.String() != "AVG" ||
		AggMin.String() != "MIN" || AggMax.String() != "MAX" {
		t.Error("aggregate names")
	}
	if k, err := AggCount.ResultKind(value.KindString); err != nil || k != value.KindInt {
		t.Error("CNT returns int regardless of attribute domain")
	}
	if k, err := AggSum.ResultKind(value.KindInt); err != nil || k != value.KindInt {
		t.Error("SUM over ints is int")
	}
	if k, err := AggSum.ResultKind(value.KindFloat); err != nil || k != value.KindFloat {
		t.Error("SUM over floats is float")
	}
	if _, err := AggSum.ResultKind(value.KindString); err == nil {
		t.Error("SUM over strings must fail")
	}
	if k, err := AggAvg.ResultKind(value.KindInt); err != nil || k != value.KindFloat {
		t.Error("AVG is always float")
	}
	if _, err := AggAvg.ResultKind(value.KindBool); err == nil {
		t.Error("AVG over booleans must fail")
	}
	if k, err := AggMin.ResultKind(value.KindString); err != nil || k != value.KindString {
		t.Error("MIN preserves the attribute domain")
	}
	if k, err := AggMax.ResultKind(value.KindFloat); err != nil || k != value.KindFloat {
		t.Error("MAX preserves the attribute domain")
	}
}

func TestExtProjectSchema(t *testing.T) {
	cat := beerCatalog()
	// (name, brewery, alcperc * 1.1) — the shape of Example 4.1's update list.
	items := []scalar.Expr{
		scalar.NewAttr(0),
		scalar.NewAttr(1),
		scalar.NewArith(value.OpMul, scalar.NewAttr(2), scalar.NewConst(value.NewFloat(1.1))),
	}
	p := NewExtProject(items, nil, NewRel("beer"))
	s, err := p.Schema(cat)
	if err != nil {
		t.Fatal(err)
	}
	if s.Arity() != 3 || s.Attribute(0).Name != "name" || s.Attribute(2).Name != "" {
		t.Errorf("ext project schema = %v", s)
	}
	if s.Attribute(2).Type != value.KindFloat {
		t.Error("computed column type")
	}
	named := NewExtProject(items, []string{"n", "b", "adjusted"}, NewRel("beer"))
	s2, err := named.Schema(cat)
	if err != nil || s2.Attribute(2).Name != "adjusted" {
		t.Errorf("named ext project schema = %v, %v", s2, err)
	}
	if len(p.Children()) != 1 || !strings.HasPrefix(p.String(), "xproject[") {
		t.Error("ext project children/string")
	}
	if _, err := NewExtProject(nil, nil, NewRel("beer")).Schema(cat); err == nil {
		t.Error("empty item list must fail")
	}
	badItem := []scalar.Expr{scalar.NewArith(value.OpMul, scalar.NewAttr(0), scalar.NewConst(value.NewInt(2)))}
	if _, err := NewExtProject(badItem, nil, NewRel("beer")).Schema(cat); err == nil {
		t.Error("untypeable item must fail")
	}
	if _, err := NewExtProject(items, nil, NewRel("wine")).Schema(cat); err == nil {
		t.Error("input error propagates")
	}
	dupNames := NewExtProject(items, []string{"x", "x", "y"}, NewRel("beer"))
	if _, err := dupNames.Schema(cat); err == nil {
		t.Error("duplicate output names must fail")
	}
}

func TestUniqueSchema(t *testing.T) {
	cat := beerCatalog()
	u := NewUnique(NewRel("beer"))
	s, err := u.Schema(cat)
	if err != nil || s.Arity() != 3 {
		t.Fatalf("unique schema = %v, %v", s, err)
	}
	if len(u.Children()) != 1 || !strings.HasPrefix(u.String(), "unique(") {
		t.Error("unique children/string")
	}
	if _, err := NewUnique(NewRel("wine")).Schema(cat); err == nil {
		t.Error("input error propagates")
	}
}

func TestGroupBySchema(t *testing.T) {
	cat := beerCatalog()
	// Γ_{(country), AVG, alcperc} over the joined schema of Example 3.2:
	// positions: 0..2 beer, 3..5 brewery; country = %6 (index 5), alcperc = %3 (index 2).
	join := NewJoin(scalar.Eq(1, 3), NewRel("beer"), NewRel("brewery"))
	g := NewGroupBy([]int{5}, AggAvg, 2, join)
	s, err := g.Schema(cat)
	if err != nil {
		t.Fatal(err)
	}
	if s.Arity() != 2 || s.Attribute(0).Name != "country" || s.Attribute(1).Type != value.KindFloat {
		t.Errorf("groupby schema = %v", s)
	}
	if s.Attribute(1).Name != "avg" {
		t.Errorf("default aggregate column name = %q", s.Attribute(1).Name)
	}
	named := GroupBy{GroupCols: []int{5}, Aggs: []AggSpec{{Fn: AggAvg, Col: 2, Name: "avg_alc"}}, Input: join}
	s2, _ := named.Schema(cat)
	if s2.Attribute(1).Name != "avg_alc" {
		t.Error("explicit aggregate column name")
	}
	// Empty α: single-attribute result (aggregate over the whole input).
	all := NewGroupBy(nil, AggCount, 0, NewRel("beer"))
	s3, err := all.Schema(cat)
	if err != nil || s3.Arity() != 1 || s3.Attribute(0).Type != value.KindInt {
		t.Errorf("global aggregate schema = %v, %v", s3, err)
	}
	if len(g.Children()) != 1 || !strings.HasPrefix(g.String(), "groupby[") {
		t.Error("groupby children/string")
	}
	// Errors.
	if _, err := NewGroupBy([]int{9}, AggCount, 0, NewRel("beer")).Schema(cat); err == nil {
		t.Error("out-of-range grouping attribute must fail")
	}
	if _, err := NewGroupBy([]int{0, 0}, AggCount, 0, NewRel("beer")).Schema(cat); err == nil {
		t.Error("repeated grouping attribute must fail")
	}
	if _, err := NewGroupBy([]int{0}, AggCount, 9, NewRel("beer")).Schema(cat); err == nil {
		t.Error("out-of-range aggregate attribute must fail")
	}
	if _, err := NewGroupBy([]int{0}, AggSum, 0, NewRel("beer")).Schema(cat); err == nil {
		t.Error("SUM over a string attribute must fail")
	}
	if _, err := NewGroupBy([]int{0}, AggCount, 0, NewRel("wine")).Schema(cat); err == nil {
		t.Error("input error propagates")
	}
}

func TestGroupByMultiAggregateSchema(t *testing.T) {
	cat := beerCatalog()
	// Γ_{(brewery), CNT, AVG alcperc, MAX alcperc}: grouping column followed
	// by one column per aggregate, in list order.
	g := NewGroupByMulti([]int{1}, []AggSpec{
		{Fn: AggCount, Col: 0}, {Fn: AggAvg, Col: 2}, {Fn: AggMax, Col: 2, Name: "peak"},
	}, NewRel("beer"))
	s, err := g.Schema(cat)
	if err != nil {
		t.Fatal(err)
	}
	if s.Arity() != 4 || s.Attribute(0).Name != "brewery" ||
		s.Attribute(1).Name != "cnt" || s.Attribute(1).Type != value.KindInt ||
		s.Attribute(2).Name != "avg" || s.Attribute(2).Type != value.KindFloat ||
		s.Attribute(3).Name != "peak" {
		t.Errorf("multi-aggregate schema = %v", s)
	}
	if want := "groupby[(%2),CNT,%1,AVG,%3,MAX,%3]"; !strings.HasPrefix(g.String(), want) {
		t.Errorf("multi-aggregate string = %q, want prefix %q", g.String(), want)
	}
	// Colliding defaulted names stay anonymous instead of failing validation.
	dup, err := NewGroupByMulti([]int{1}, []AggSpec{
		{Fn: AggCount, Col: 0}, {Fn: AggCount, Col: 2},
	}, NewRel("beer")).Schema(cat)
	if err != nil {
		t.Fatal(err)
	}
	if dup.Attribute(1).Name != "cnt" || dup.Attribute(2).Name != "" {
		t.Errorf("defaulted duplicate names = %q, %q", dup.Attribute(1).Name, dup.Attribute(2).Name)
	}
	// Explicitly colliding names fail loudly.
	if _, err := NewGroupByMulti([]int{1}, []AggSpec{
		{Fn: AggCount, Col: 0, Name: "x"}, {Fn: AggMax, Col: 2, Name: "x"},
	}, NewRel("beer")).Schema(cat); err == nil {
		t.Error("explicit duplicate aggregate names must fail")
	}
	// An empty aggregate list is not a groupby.
	if _, err := (GroupBy{GroupCols: []int{1}, Input: NewRel("beer")}).Schema(cat); err == nil {
		t.Error("empty aggregate list must fail")
	}
	// A bad column in any list member propagates.
	if _, err := NewGroupByMulti(nil, []AggSpec{
		{Fn: AggCount, Col: 0}, {Fn: AggSum, Col: 9},
	}, NewRel("beer")).Schema(cat); err == nil {
		t.Error("out-of-range aggregate attribute in the list must fail")
	}
}

func TestTCloseSchema(t *testing.T) {
	cat := MapCatalog{
		"edge": schema.NewRelation("edge",
			schema.Attribute{Name: "src", Type: value.KindInt},
			schema.Attribute{Name: "dst", Type: value.KindInt},
		),
		"beer": beerCatalog()["beer"],
	}
	tc := NewTClose(NewRel("edge"))
	s, err := tc.Schema(cat)
	if err != nil || s.Arity() != 2 {
		t.Fatalf("tclose schema = %v, %v", s, err)
	}
	if len(tc.Children()) != 1 || !strings.HasPrefix(tc.String(), "tclose(") {
		t.Error("tclose children/string")
	}
	if _, err := NewTClose(NewRel("beer")).Schema(cat); err == nil {
		t.Error("non-binary input must fail")
	}
	mixed := MapCatalog{"m": schema.NewRelation("m",
		schema.Attribute{Name: "a", Type: value.KindInt},
		schema.Attribute{Name: "b", Type: value.KindString},
	)}
	if _, err := NewTClose(NewRel("m")).Schema(mixed); err == nil {
		t.Error("incompatible attribute domains must fail")
	}
	if _, err := NewTClose(NewRel("missing")).Schema(cat); err == nil {
		t.Error("input error propagates")
	}
}

func TestWalkRelationsCountNodes(t *testing.T) {
	expr := NewProject([]int{0},
		NewSelect(scalar.NewCompare(value.CmpEq, scalar.NewAttr(5), scalar.NewConst(value.NewString("netherlands"))),
			NewJoin(scalar.Eq(1, 3), NewRel("beer"), NewRel("brewery"))))
	names := Relations(expr)
	if len(names) != 2 || names[0] != "beer" || names[1] != "brewery" {
		t.Errorf("Relations = %v", names)
	}
	if n := CountNodes(expr); n != 5 {
		t.Errorf("CountNodes = %d, want 5", n)
	}
	// Repeated relations are deduplicated.
	u := NewUnion(NewRel("beer"), NewRel("BEER"))
	if got := Relations(u); len(got) != 1 {
		t.Errorf("Relations with duplicates = %v", got)
	}
	// Walk early cut: don't descend into children.
	count := 0
	Walk(expr, func(Expr) bool { count++; return false })
	if count != 1 {
		t.Errorf("Walk with cut visited %d nodes", count)
	}
	Walk(nil, func(Expr) bool { t.Error("walking nil must not call fn"); return true })
}

func TestValidateWholeExample32(t *testing.T) {
	// Γ_{(country),AVG,alcperc}(beer ⋈ brewery) — the paper's Example 3.2.
	cat := beerCatalog()
	expr := NewGroupBy([]int{5}, AggAvg, 2,
		NewJoin(scalar.Eq(1, 3), NewRel("beer"), NewRel("brewery")))
	if err := Validate(expr, cat); err != nil {
		t.Errorf("Example 3.2 expression must validate: %v", err)
	}
	// With the inner projection π_{alcperc,country}: positions become
	// alcperc=0, country=1 after projecting {2,5}.
	expr2 := NewGroupBy([]int{1}, AggAvg, 0,
		NewProject([]int{2, 5},
			NewJoin(scalar.Eq(1, 3), NewRel("beer"), NewRel("brewery"))))
	if err := Validate(expr2, cat); err != nil {
		t.Errorf("Example 3.2 with projection push-in must validate: %v", err)
	}
}
