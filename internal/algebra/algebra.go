// Package algebra implements the expression language of the multi-set
// extended relational algebra (Section 3 of Grefen & de By, ICDE 1994): the
// basic algebra (union ⊎, difference −, product ×, selection σ, projection π),
// the standard algebra (intersection ∩, join ⋈), and the extended algebra
// (extended/arithmetic projection, unique δ, groupby Γ with the aggregate
// functions CNT, SUM, AVG, MIN and MAX), plus the transitive-closure operator
// the paper names as its canonical extension.
//
// The package defines only the *logical* expressions: operator trees with
// schema inference and validation.  Execution lives in package eval; rewriting
// for query optimisation lives in package rewrite.
package algebra

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"mra/internal/scalar"
	"mra/internal/schema"
	"mra/internal/value"
)

// ErrPlan is the sentinel wrapped by all expression validation errors.
var ErrPlan = errors.New("algebra error")

// Catalog resolves database relation names to their schemas.  The storage
// engine's database schema and the facade both implement it; tests use small
// map-backed catalogs.
type Catalog interface {
	// RelationSchema returns the schema of the named database relation.
	RelationSchema(name string) (schema.Relation, bool)
}

// MapCatalog is a Catalog backed by a plain map; the key lookup is
// case-insensitive like the storage engine's.
type MapCatalog map[string]schema.Relation

// RelationSchema implements Catalog.
func (m MapCatalog) RelationSchema(name string) (schema.Relation, bool) {
	if s, ok := m[name]; ok {
		return s, true
	}
	for k, s := range m {
		if strings.EqualFold(k, name) {
			return s, true
		}
	}
	return schema.Relation{}, false
}

// Expr is a multi-set relational expression.  Expressions are immutable trees.
type Expr interface {
	// Schema infers the expression's output schema against a catalog,
	// validating operand compatibility, attribute ranges, and condition and
	// arithmetic typing along the way.
	Schema(cat Catalog) (schema.Relation, error)
	// Children returns the expression's direct relational sub-expressions.
	Children() []Expr
	// String renders the expression in a compact linear syntax close to the
	// paper's notation (union, diff, product, select[...], project[...], ...).
	String() string
}

// Validate walks the expression bottom-up and reports the first planning
// error, if any.  It is equivalent to calling Schema and discarding the
// result, but reads better at call sites that only need the check.
func Validate(e Expr, cat Catalog) error {
	_, err := e.Schema(cat)
	return err
}

// ---------------------------------------------------------------------------
// Leaves
// ---------------------------------------------------------------------------

// Rel references a database relation by name; its schema comes from the
// catalog at validation time.  A database relation is the base case of the
// basic relational expressions (Definition 3.1).
type Rel struct {
	// Name is the database relation's name.
	Name string
}

// NewRel returns a reference to the named database relation.
func NewRel(name string) Rel { return Rel{Name: name} }

// Schema implements Expr.
func (r Rel) Schema(cat Catalog) (schema.Relation, error) {
	if cat == nil {
		return schema.Relation{}, fmt.Errorf("%w: no catalog to resolve relation %q", ErrPlan, r.Name)
	}
	s, ok := cat.RelationSchema(r.Name)
	if !ok {
		return schema.Relation{}, fmt.Errorf("%w: unknown relation %q", ErrPlan, r.Name)
	}
	return s, nil
}

// Children implements Expr.
func (r Rel) Children() []Expr { return nil }

// String implements Expr.
func (r Rel) String() string { return r.Name }

// Literal is a constant relation embedded in an expression.  It is used for
// INSERT ... VALUES statements and by tests; the paper's algebra allows any
// multi-set as an operand.
type Literal struct {
	// Rel is the literal's schema.
	Rel schema.Relation
	// Rows are the literal's tuple rows, as value lists; duplicates are
	// meaningful (each row contributes multiplicity one).
	Rows [][]value.Value
}

// Schema implements Expr.
func (l Literal) Schema(Catalog) (schema.Relation, error) {
	for i, row := range l.Rows {
		if len(row) != l.Rel.Arity() {
			return schema.Relation{}, fmt.Errorf("%w: literal row %d has %d values, schema has arity %d", ErrPlan, i+1, len(row), l.Rel.Arity())
		}
		for j, v := range row {
			want := l.Rel.Attribute(j).Type
			if v.IsNull() || v.Kind() == want {
				continue
			}
			if v.Kind().Numeric() && want.Numeric() {
				continue
			}
			return schema.Relation{}, fmt.Errorf("%w: literal row %d attribute %d is %s, schema expects %s", ErrPlan, i+1, j+1, v.Kind(), want)
		}
	}
	return l.Rel, nil
}

// Children implements Expr.
func (l Literal) Children() []Expr { return nil }

// String implements Expr.
func (l Literal) String() string {
	return fmt.Sprintf("literal[%d rows]", len(l.Rows))
}

// ---------------------------------------------------------------------------
// Basic relational algebra (Definition 3.1)
// ---------------------------------------------------------------------------

// Union is the multi-set union E1 ⊎ E2: multiplicities add.
type Union struct {
	Left, Right Expr
}

// NewUnion returns the union of two expressions.
func NewUnion(left, right Expr) Union { return Union{Left: left, Right: right} }

// Schema implements Expr.
func (u Union) Schema(cat Catalog) (schema.Relation, error) {
	return compatibleSchema("union", u.Left, u.Right, cat)
}

// Children implements Expr.
func (u Union) Children() []Expr { return []Expr{u.Left, u.Right} }

// String implements Expr.
func (u Union) String() string {
	return fmt.Sprintf("union(%s, %s)", u.Left, u.Right)
}

// Difference is the multi-set difference E1 − E2: multiplicities subtract,
// clamped at zero.
type Difference struct {
	Left, Right Expr
}

// NewDifference returns the difference of two expressions.
func NewDifference(left, right Expr) Difference { return Difference{Left: left, Right: right} }

// Schema implements Expr.
func (d Difference) Schema(cat Catalog) (schema.Relation, error) {
	return compatibleSchema("diff", d.Left, d.Right, cat)
}

// Children implements Expr.
func (d Difference) Children() []Expr { return []Expr{d.Left, d.Right} }

// String implements Expr.
func (d Difference) String() string {
	return fmt.Sprintf("diff(%s, %s)", d.Left, d.Right)
}

// Product is the Cartesian product E1 × E3: multiplicities multiply and the
// schema is the concatenation 𝓔 ⊕ 𝓔′.
type Product struct {
	Left, Right Expr
}

// NewProduct returns the Cartesian product of two expressions.
func NewProduct(left, right Expr) Product { return Product{Left: left, Right: right} }

// Schema implements Expr.
func (p Product) Schema(cat Catalog) (schema.Relation, error) {
	ls, err := p.Left.Schema(cat)
	if err != nil {
		return schema.Relation{}, err
	}
	rs, err := p.Right.Schema(cat)
	if err != nil {
		return schema.Relation{}, err
	}
	return ls.Concat(rs), nil
}

// Children implements Expr.
func (p Product) Children() []Expr { return []Expr{p.Left, p.Right} }

// String implements Expr.
func (p Product) String() string {
	return fmt.Sprintf("product(%s, %s)", p.Left, p.Right)
}

// Select is the selection σ_φ(E): tuples satisfying the condition keep their
// multiplicities; the rest are dropped.
type Select struct {
	Cond  scalar.Predicate
	Input Expr
}

// NewSelect returns the selection of an expression under a condition.
func NewSelect(cond scalar.Predicate, input Expr) Select {
	return Select{Cond: cond, Input: input}
}

// Schema implements Expr.
func (s Select) Schema(cat Catalog) (schema.Relation, error) {
	in, err := s.Input.Schema(cat)
	if err != nil {
		return schema.Relation{}, err
	}
	if s.Cond == nil {
		return schema.Relation{}, fmt.Errorf("%w: select without a condition", ErrPlan)
	}
	if err := s.Cond.Validate(in); err != nil {
		return schema.Relation{}, fmt.Errorf("%w: %v", ErrPlan, err)
	}
	return in, nil
}

// Children implements Expr.
func (s Select) Children() []Expr { return []Expr{s.Input} }

// String implements Expr.
func (s Select) String() string {
	return fmt.Sprintf("select[%s](%s)", s.Cond, s.Input)
}

// Project is the projection π_α(E) on a positional attribute list (0-based
// indices).  Under bag semantics, tuples that become equal after projection
// accumulate their multiplicities; no duplicate elimination takes place.
type Project struct {
	Columns []int
	Input   Expr
}

// NewProject returns the projection of an expression on attribute positions.
func NewProject(columns []int, input Expr) Project {
	cp := make([]int, len(columns))
	copy(cp, columns)
	return Project{Columns: cp, Input: input}
}

// Schema implements Expr.
func (p Project) Schema(cat Catalog) (schema.Relation, error) {
	in, err := p.Input.Schema(cat)
	if err != nil {
		return schema.Relation{}, err
	}
	if len(p.Columns) == 0 {
		return schema.Relation{}, fmt.Errorf("%w: projection with an empty attribute list", ErrPlan)
	}
	out, err := in.Project(p.Columns)
	if err != nil {
		return schema.Relation{}, fmt.Errorf("%w: %v", ErrPlan, err)
	}
	return out, nil
}

// Children implements Expr.
func (p Project) Children() []Expr { return []Expr{p.Input} }

// String implements Expr.
func (p Project) String() string {
	cols := make([]string, len(p.Columns))
	for i, c := range p.Columns {
		cols[i] = "%" + strconv.Itoa(c+1)
	}
	return fmt.Sprintf("project[%s](%s)", strings.Join(cols, ","), p.Input)
}

// ---------------------------------------------------------------------------
// Standard relational algebra (Definition 3.2)
// ---------------------------------------------------------------------------

// Intersect is the multi-set intersection E1 ∩ E2: multiplicities take the
// minimum.  By Theorem 3.1 it is expressible as E1 − (E1 − E2).
type Intersect struct {
	Left, Right Expr
}

// NewIntersect returns the intersection of two expressions.
func NewIntersect(left, right Expr) Intersect { return Intersect{Left: left, Right: right} }

// Schema implements Expr.
func (i Intersect) Schema(cat Catalog) (schema.Relation, error) {
	return compatibleSchema("intersect", i.Left, i.Right, cat)
}

// Children implements Expr.
func (i Intersect) Children() []Expr { return []Expr{i.Left, i.Right} }

// String implements Expr.
func (i Intersect) String() string {
	return fmt.Sprintf("intersect(%s, %s)", i.Left, i.Right)
}

// Join is the condition join E1 ⋈_φ E2 = σ_φ(E1 × E2) (Theorem 3.1).  The
// condition addresses the concatenated schema 𝓔 ⊕ 𝓔′ positionally.
type Join struct {
	Cond        scalar.Predicate
	Left, Right Expr
}

// NewJoin returns the join of two expressions under a condition over the
// concatenated schema.
func NewJoin(cond scalar.Predicate, left, right Expr) Join {
	return Join{Cond: cond, Left: left, Right: right}
}

// Schema implements Expr.
func (j Join) Schema(cat Catalog) (schema.Relation, error) {
	ls, err := j.Left.Schema(cat)
	if err != nil {
		return schema.Relation{}, err
	}
	rs, err := j.Right.Schema(cat)
	if err != nil {
		return schema.Relation{}, err
	}
	out := ls.Concat(rs)
	if j.Cond == nil {
		return schema.Relation{}, fmt.Errorf("%w: join without a condition", ErrPlan)
	}
	if err := j.Cond.Validate(out); err != nil {
		return schema.Relation{}, fmt.Errorf("%w: %v", ErrPlan, err)
	}
	return out, nil
}

// Children implements Expr.
func (j Join) Children() []Expr { return []Expr{j.Left, j.Right} }

// String implements Expr.
func (j Join) String() string {
	return fmt.Sprintf("join[%s](%s, %s)", j.Cond, j.Left, j.Right)
}
