package mra

import (
	"math"
	"strings"
	"testing"

	"mra/internal/multiset"
	"mra/internal/schema"
	"mra/internal/tuple"
	"mra/internal/value"
)

// TestQuerySQLOrderByLimit exercises the new ORDER BY / LIMIT / OFFSET
// support end to end through the public SQL API.
func TestQuerySQLOrderByLimit(t *testing.T) {
	db := explainBeerDB(t)

	res, err := db.QuerySQL("SELECT name, alcperc FROM beer ORDER BY alcperc DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 2 || res.Len() != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0] != "tripel" || rows[1][0] != "bock" {
		t.Errorf("descending order wrong: %v", rows)
	}

	// Ascending with OFFSET; ties (two 'pils' rows) stay deterministic via
	// the canonical order.
	res, err = db.QuerySQL("SELECT name FROM beer ORDER BY name OFFSET 1")
	if err != nil {
		t.Fatal(err)
	}
	rows = res.Rows()
	if len(rows) != 4 || rows[0][0] != "pils" || rows[1][0] != "pils" || rows[3][0] != "tripel" {
		t.Errorf("offset rows = %v", rows)
	}

	// LIMIT counts occurrences: duplicates are limited away individually.
	res, err = db.QuerySQL("SELECT name FROM beer ORDER BY name LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 || res.Multiplicity("bock") != 1 || res.Multiplicity("pils") != 1 {
		t.Errorf("limited result = %s", res)
	}

	// The table rendering follows the requested order, not canonical order.
	res, err = db.QuerySQL("SELECT name, alcperc FROM beer ORDER BY alcperc DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	table := res.Table()
	lines := strings.Split(strings.TrimSpace(table), "\n")
	if !strings.HasPrefix(lines[2], "tripel") || !strings.HasPrefix(lines[3], "bock") {
		t.Errorf("table order wrong:\n%s", table)
	}

	// ORDER BY on a non-selected column computes it as a hidden sort column
	// through the physical Sort operator and strips it from the presentation.
	res, err = db.QuerySQL("SELECT name FROM beer ORDER BY alcperc DESC")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Columns(); len(got) != 1 || got[0] != "name" {
		t.Errorf("hidden sort column leaked into the output: %v", got)
	}
	rows = res.Rows()
	if len(rows) != 5 || rows[0][0] != "tripel" || rows[1][0] != "bock" || rows[4][0] != "stout" {
		t.Errorf("hidden-column order wrong: %v", rows)
	}
	if res.Len() != 5 || res.Multiplicity("pils") != 2 {
		t.Errorf("hidden-column result = %s", res)
	}

	// Arbitrary key expressions work too, windowing included.
	res, err = db.QuerySQL("SELECT name FROM beer ORDER BY alcperc * -1 LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	rows = res.Rows()
	if len(rows) != 2 || rows[0][0] != "tripel" || rows[1][0] != "bock" || res.Len() != 2 {
		t.Errorf("expression-key order wrong: %v", rows)
	}

	// Grouped-query keys must be output columns, grouping columns or
	// aggregates — a plain FROM column the grouping collapsed away fails.
	if _, err := db.QuerySQL("SELECT brewery, COUNT(*) FROM beer GROUP BY brewery ORDER BY alcperc"); err == nil {
		t.Error("ORDER BY on a non-output column of a grouped query must fail")
	}

	// OFFSET past the end yields an empty result, not an error.
	res, err = db.QuerySQL("SELECT name FROM beer ORDER BY name OFFSET 99")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Errorf("offset past end = %s", res)
	}

	// ExecSQL (the script path the shell uses) honours modifiers per query.
	results, err := db.ExecSQL("SELECT name, alcperc FROM beer ORDER BY alcperc DESC LIMIT 1; SELECT name FROM beer")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Len() != 1 || results[0].Rows()[0][0] != "tripel" {
		t.Errorf("script results = %v", results[0].Rows())
	}
	if results[1].Len() != 5 {
		t.Errorf("unmodified script query = %d rows", results[1].Len())
	}

	// Explicit transactions reject the modifiers: their outputs are bare
	// multi-sets with no presentation channel.
	tx := db.Begin()
	defer tx.Abort()
	if err := tx.ExecSQL("SELECT name FROM beer ORDER BY name"); err == nil {
		t.Error("Tx.ExecSQL must reject ORDER BY")
	}
}

// TestResultLenSaturates pins the fix for the unchecked uint64→int cast:
// cardinalities beyond the int range saturate instead of wrapping negative.
func TestResultLenSaturates(t *testing.T) {
	rel := multiset.New(schema.Anonymous(schema.Attribute{Name: "x", Type: value.KindInt}))
	rel.Add(tuple.Ints(1), math.MaxUint64)
	res := &Result{rel: rel}
	if got := res.Len(); got != math.MaxInt {
		t.Errorf("Len = %d, want math.MaxInt", got)
	}
	if got := res.DistinctLen(); got != 1 {
		t.Errorf("DistinctLen = %d", got)
	}
}

// TestOrderByAggregate exercises aggregate-aware ORDER BY key translation on
// grouped queries: keys repeating a SELECT aggregate sort on that output
// column, and aggregates absent from the SELECT list ride as hidden trailing
// aggregate columns that are stripped before presentation.
func TestOrderByAggregate(t *testing.T) {
	db := explainBeerDB(t)

	// ORDER BY an aggregate that is in the SELECT list (no hidden column).
	res, err := db.QuerySQL("SELECT brewery, COUNT(*) FROM beer GROUP BY brewery ORDER BY COUNT(*) DESC, brewery")
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 4 || rows[0][0] != "guineken" || rows[0][1] != int64(2) || rows[1][0] != "brolsch" {
		t.Errorf("ORDER BY COUNT(*) DESC rows = %v", rows)
	}

	// ORDER BY an aggregate that is NOT in the SELECT list: hidden trailing
	// aggregate column, stripped from the presented rows.
	res, err = db.QuerySQL("SELECT brewery, COUNT(*) FROM beer GROUP BY brewery ORDER BY SUM(alcperc) DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	rows = res.Rows()
	if len(rows) != 2 || len(rows[0]) != 2 || rows[0][0] != "guineken" || rows[1][0] != "westmalle" {
		t.Errorf("hidden SUM key rows = %v", rows)
	}

	// A grouping column as the key of an aggregate-free GROUP BY.
	res, err = db.QuerySQL("SELECT brewery FROM beer GROUP BY brewery ORDER BY COUNT(*) DESC, brewery LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	rows = res.Rows()
	if len(rows) != 1 || len(rows[0]) != 1 || rows[0][0] != "guineken" {
		t.Errorf("aggregate key over aggregate-free SELECT = %v", rows)
	}

	// DISTINCT grouped queries may sort on aggregates the SELECT list already
	// computes, but hidden aggregate keys would change what DISTINCT
	// deduplicates and stay rejected.
	if _, err := db.QuerySQL("SELECT DISTINCT brewery, COUNT(*) AS n FROM beer GROUP BY brewery ORDER BY COUNT(*) DESC"); err != nil {
		t.Errorf("DISTINCT with a SELECT-matched aggregate key: %v", err)
	}
	if _, err := db.QuerySQL("SELECT DISTINCT brewery FROM beer GROUP BY brewery ORDER BY COUNT(*)"); err == nil {
		t.Error("DISTINCT with a hidden aggregate key must fail")
	}

	// The hidden-aggregate path composes with parallel execution.
	db.SetWorkers(4)
	res, err = db.QuerySQL("SELECT brewery, COUNT(*), AVG(alcperc) FROM beer GROUP BY brewery ORDER BY MAX(alcperc) DESC LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	rows = res.Rows()
	if len(rows) != 1 || rows[0][0] != "westmalle" {
		t.Errorf("parallel hidden-key rows = %v", rows)
	}
}
